#!/bin/sh
# Full verification gate: build, run every test suite, then smoke-check
# the fault-injection and recovery CLI scenarios and their exit-code
# protocol (0 clean, 1 audit issues, 2 runtime error, 3 deadlock or
# rank failure, 4 recovered but degraded, 9 silent data corruption
# detected but unrecovered).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

PARAD="dune exec bin/parad.exe --"
expect_exit() {
  want=$1
  shift
  echo "== parad $* (expect exit $want) =="
  set +e
  $PARAD "$@" > /tmp/parad-check.out 2>&1
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: parad $* exited $got, expected $want"
    cat /tmp/parad-check.out
    exit 1
  fi
}

COMMON="--flavor mpi --ranks 4 --size 2 --iters 2"

# faultless run is clean
expect_exit 0 faults --plan none $COMMON

# recoverable drops: same gradient, clean audit
expect_exit 0 faults --plan drop-retry $COMMON
grep -q "retries=" /tmp/parad-check.out || {
  echo "FAIL: drop-retry run did not report retries"
  exit 1
}

# a duplicated message leaves an unmatched send -> dirty audit
expect_exit 1 faults --plan dup $COMMON

# killing a rank without a supervisor -> structured rank-failure report
expect_exit 3 faults --plan kill $COMMON
grep -q "rank failure" /tmp/parad-check.out || {
  echo "FAIL: kill run printed no structured rank-failure notification"
  exit 1
}

# losing every message from a rank deadlocks too, with lost messages
# named in the audit
expect_exit 3 faults --plan blackhole $COMMON
grep -q "lost message" /tmp/parad-check.out || {
  echo "FAIL: blackhole run named no lost messages"
  exit 1
}

# seeded plans are deterministic: two runs, byte-identical output
$PARAD faults --plan blackhole $COMMON > /tmp/parad-a.out 2>&1 || true
$PARAD faults --plan blackhole $COMMON > /tmp/parad-b.out 2>&1 || true
cmp -s /tmp/parad-a.out /tmp/parad-b.out || {
  echo "FAIL: blackhole diagnosis differs across reruns"
  diff /tmp/parad-a.out /tmp/parad-b.out || true
  exit 1
}

# --dry-run parses the spec grammar, prints the plan, and runs nothing
expect_exit 0 faults --plan "kill:victim=2,at=500,kill=3@9000" --dry-run $COMMON
grep -q "kill rank 3 at t>=9000" /tmp/parad-check.out || {
  echo "FAIL: dry-run did not print the parsed kill overrides"
  exit 1
}
expect_exit 2 faults --plan "kill:bogus=1" --dry-run $COMMON

# the same kill plan under the supervised driver recovers: exit 0 and a
# restart history instead of a rank-failure abort
expect_exit 0 recover --app lulesh --plan kill $COMMON
grep -q "recovery: 1 restart(s)" /tmp/parad-check.out || {
  echo "FAIL: recover run reported no restart"
  exit 1
}

# a later kill restores from a globally-consistent checkpoint (warm)
COMMON3="--flavor mpi --ranks 4 --size 2 --iters 3"
expect_exit 0 recover --app lulesh --plan "kill:victim=2,at=80000" $COMMON3
grep -q "resumed from checkpoint" /tmp/parad-check.out || {
  echo "FAIL: warm recover did not resume from a checkpoint"
  exit 1
}

# the recovered gradient equals the faultless one bit-for-bit
$PARAD grad $COMMON3 2>/dev/null | grep "d total" > /tmp/parad-clean.out
grep "d total" /tmp/parad-check.out > /tmp/parad-recovered.out
cmp -s /tmp/parad-clean.out /tmp/parad-recovered.out || {
  echo "FAIL: recovered gradient differs from the faultless gradient"
  diff /tmp/parad-clean.out /tmp/parad-recovered.out || true
  exit 1
}

# more kills than the restart budget -> the failure surfaces, exit 3
expect_exit 3 recover --app lulesh --plan "kill:kill=2,kill=3" --max-restarts 1 $COMMON
grep -q "unrecovered after 1 restart" /tmp/parad-check.out || {
  echo "FAIL: exhausted restart budget not reported"
  exit 1
}

# ---- ParSan sanitizer gate (exit 5 = miscompilation, 4 = degraded) ----

SAN_OMP="--app lulesh --flavor omp --threads 4 --size 3 --iters 2"

# clean sanitized primal+gradient runs: zero findings
expect_exit 0 sanitize $SAN_OMP --primal
grep -q "sanitizer: 0 findings" /tmp/parad-check.out || {
  echo "FAIL: sanitized lulesh primal reported findings"
  exit 1
}
expect_exit 0 sanitize $SAN_OMP
grep -q "sanitizer: 0 findings" /tmp/parad-check.out || {
  echo "FAIL: sanitized lulesh gradient reported findings"
  exit 1
}
expect_exit 0 sanitize --app bude --threads 4
grep -q "sanitizer: 0 findings" /tmp/parad-check.out || {
  echo "FAIL: sanitized bude gradient reported findings"
  exit 1
}

# the abl-tl ablation (every accumulation atomic) must also come up clean
expect_exit 0 sanitize $SAN_OMP --atomic-always

# the seeded inverse (assume every shadow thread-private) is a
# miscompilation RaceSan's static/dynamic cross-validation must catch
expect_exit 5 sanitize $SAN_OMP --assume-private
grep -q "miscompilation" /tmp/parad-check.out || {
  echo "FAIL: assume-private run reported no miscompilation"
  exit 1
}
grep -q "claimed buffer" /tmp/parad-check.out || {
  echo "FAIL: miscompilation finding did not name the refuted claim"
  exit 1
}

# GradSan: NaN-injected degrade run quarantines and exits 4 ...
expect_exit 4 sanitize $SAN_OMP --inject-nan 5 --mode degrade
grep -q "quarantined=1" /tmp/parad-check.out || {
  echo "FAIL: degrade run did not quarantine the injected NaN"
  exit 1
}
# ... while strict mode aborts at the first origin, exit 2
expect_exit 2 sanitize $SAN_OMP --inject-nan 5 --mode strict
grep -q "gradient-integrity violation" /tmp/parad-check.out || {
  echo "FAIL: strict run did not report the first-origin provenance"
  exit 1
}

# sanitizing composes with fault injection: drop-retry stays clean
expect_exit 0 sanitize --app lulesh $COMMON --plan drop-retry
grep -q "sanitizer: 0 findings" /tmp/parad-check.out || {
  echo "FAIL: sanitized drop-retry run reported findings"
  exit 1
}

# out-of-range fault targets are rejected loudly, not silently inert
expect_exit 2 faults --plan "kill:victim=9" --dry-run $COMMON
grep -q "out of range" /tmp/parad-check.out || {
  echo "FAIL: out-of-range victim not rejected"
  exit 1
}

# ---- silent-data-corruption envelope (exit 9 = corrupted) ----

# an unsupervised bit flip into sealed cache memory must surface as a
# structured corruption notice, never a silently wrong gradient
expect_exit 9 grad $COMMON --plan "none:flip=1@40@31@50"
grep -q "silent data corruption" /tmp/parad-check.out || {
  echo "FAIL: unsupervised flip printed no corruption notice"
  exit 1
}

# the same flip under the supervised driver restarts from a verified
# snapshot and reproduces the faultless gradient bit-for-bit
expect_exit 0 recover --app lulesh --plan "none:flip=1@40@31@50,retries=5" $COMMON
grep -q "sdc_inj=1 sdc_det=1 sdc_rec=1" /tmp/parad-check.out || {
  echo "FAIL: supervised flip not detected-and-recovered"
  exit 1
}
grep "d total" /tmp/parad-check.out > /tmp/parad-sdc.out
$PARAD grad $COMMON 2>/dev/null | grep "d total" > /tmp/parad-clean4.out
cmp -s /tmp/parad-clean4.out /tmp/parad-sdc.out || {
  echo "FAIL: flip-recovered gradient differs from the faultless one"
  diff /tmp/parad-clean4.out /tmp/parad-sdc.out || true
  exit 1
}

# a damaged in-flight message is caught by its checksum trailer and
# retransmitted in place: clean exit, retransmit counted
expect_exit 0 faults --plan "none:corrupt-msg=1@9" $COMMON
grep -q "retrans=1" /tmp/parad-check.out || {
  echo "FAIL: corrupt-msg run counted no retransmit"
  exit 1
}

# sticky damage re-corrupts every retransmit: the ladder exhausts and
# the run aborts with the corruption notice, exit 9
expect_exit 9 faults --plan "none:retries=2,corrupt-msg=1@9@sticky" $COMMON
grep -q "corrupt" /tmp/parad-check.out || {
  echo "FAIL: sticky corruption printed no notice"
  exit 1
}

# duplicate scalar keys in a plan spec are a conflict, not last-wins
expect_exit 2 faults --plan "kill:at=0,at=500" --dry-run $COMMON
grep -q "at most once" /tmp/parad-check.out || {
  echo "FAIL: duplicate scalar key not rejected"
  exit 1
}

# ---- shared-memory overhead regression gate ----
# The quick overhead figure still runs the headline "LULESH C++ OMP"
# configuration at 64 threads; its gradient/forward ratio must stay at
# or below the checked-in threshold (bench/overhead_threshold).

echo "== overhead regression gate =="
dune exec bench/main.exe -- --quick --figure overhead > /tmp/parad-bench.out 2>&1 || {
  echo "FAIL: overhead benchmark did not run"
  cat /tmp/parad-bench.out
  exit 1
}
tail -n 20 /tmp/parad-bench.out
THRESH=$(cat bench/overhead_threshold)
OVH=$(grep -o '"name": "LULESH C++ OMP",[^}]*' BENCH_overhead.json \
  | grep -o '"overhead": [0-9.]*' | awk '{print $2}')
[ -n "$OVH" ] || {
  echo "FAIL: no LULESH C++ OMP row in BENCH_overhead.json"
  exit 1
}
awk -v o="$OVH" -v t="$THRESH" 'BEGIN { exit !(o <= t) }' || {
  echo "FAIL: LULESH OMP 64-thread overhead ${OVH}x exceeds threshold ${THRESH}x"
  exit 1
}
echo "overhead gate: ${OVH}x <= ${THRESH}x"

# ---- MPI strong-scaling regression gate ----
# Fig 8's gate row always runs the full-size 64-rank LULESH MPI mesh
# (even under --quick) and records its strong-scaling speedups in
# BENCH_mpi.json; gradient and forward must stay at or above the
# checked-in floors (bench/mpi_threshold: "grad_min fwd_min").

echo "== MPI strong-scaling gate =="
dune exec bench/main.exe -- --quick --figure fig8 > /tmp/parad-mpi.out 2>&1 || {
  echo "FAIL: fig8 benchmark did not run"
  cat /tmp/parad-mpi.out
  exit 1
}
tail -n 6 /tmp/parad-mpi.out
GRAD_MIN=$(awk '{print $1}' bench/mpi_threshold)
FWD_MIN=$(awk '{print $2}' bench/mpi_threshold)
GATE=$(grep -o '"name": "lulesh_cpp_mpi_gate", "nranks": 64, "coalesce": true,[^}]*' BENCH_mpi.json)
[ -n "$GATE" ] || {
  echo "FAIL: no 64-rank gate row in BENCH_mpi.json"
  exit 1
}
GRAD_SP=$(echo "$GATE" | grep -o '"grad_speedup": [0-9.]*' | awk '{print $2}')
FWD_SP=$(echo "$GATE" | grep -o '"fwd_speedup": [0-9.]*' | awk '{print $2}')
awk -v g="$GRAD_SP" -v t="$GRAD_MIN" 'BEGIN { exit !(g >= t) }' || {
  echo "FAIL: 64-rank LULESH MPI gradient speedup ${GRAD_SP}x below floor ${GRAD_MIN}x"
  exit 1
}
awk -v f="$FWD_SP" -v t="$FWD_MIN" 'BEGIN { exit !(f >= t) }' || {
  echo "FAIL: 64-rank LULESH MPI forward speedup ${FWD_SP}x below floor ${FWD_MIN}x"
  exit 1
}
echo "mpi gate: gradient ${GRAD_SP}x >= ${GRAD_MIN}x, forward ${FWD_SP}x >= ${FWD_MIN}x"

# ---- long-horizon checkpoint gate ----
# The checkpoint figure's gate row runs the 24-iteration LULESH MPI
# gradient (>= 10x the headline bench horizon) under a binomial schedule
# with a fixed snapshot budget, even under --quick, and records it in
# BENCH_checkpoint.json. Its AD cache peak must stay at or below the
# checked-in ceiling (bench/checkpoint_threshold) — store-all peaks ~20x
# higher at this horizon — and the gradient must be bit-identical to the
# store-all baseline.

echo "== long-horizon checkpoint gate =="
dune exec bench/main.exe -- --quick --figure checkpoint > /tmp/parad-ckpt.out 2>&1 || {
  echo "FAIL: checkpoint benchmark did not run"
  cat /tmp/parad-ckpt.out
  exit 1
}
tail -n 8 /tmp/parad-ckpt.out
PEAK_MAX=$(cat bench/checkpoint_threshold)
CROW=$(grep -o '"name": "lulesh_mpi_binomial_gate",[^}]*' BENCH_checkpoint.json)
[ -n "$CROW" ] || {
  echo "FAIL: no binomial gate row in BENCH_checkpoint.json"
  exit 1
}
CPEAK=$(echo "$CROW" | grep -o '"cache_peak": [0-9]*' | awk '{print $2}')
awk -v p="$CPEAK" -v t="$PEAK_MAX" 'BEGIN { exit !(p <= t) }' || {
  echo "FAIL: binomial checkpoint cache peak ${CPEAK} cells exceeds ceiling ${PEAK_MAX}"
  exit 1
}
echo "$CROW" | grep -q '"bitwise": true' || {
  echo "FAIL: binomial gradient is not bit-identical to the store-all baseline"
  exit 1
}
echo "checkpoint gate: cache peak ${CPEAK} <= ${PEAK_MAX}, bit-identical"

# ---- seeded chaos-soak smoke ----
# A short deterministic soak: randomized fault plans x checkpoint
# schedules; every trial must end bit-identical or as a classified clean
# abort. Any unclassified outcome exits 1.

echo "== chaos soak (seeded smoke) =="
expect_exit 0 soak --trials 12 --seed 42
tail -n 3 /tmp/parad-check.out

# ---- one-shot deadline protocol (exit 6) ----
# A virtual budget far below the work aborts with the documented
# deadline exit code; a non-positive deadline is a flag parse error.

expect_exit 6 grad --flavor mpi --ranks 2 --iters 2 --deadline-cycles 500
grep -q "deadline exceeded" /tmp/parad-check.out || {
  echo "FAIL: busted deadline printed no structured report"
  exit 1
}
expect_exit 124 grad --flavor seq --deadline-ms 0
expect_exit 0 grad --flavor seq --size 2 --iters 1 --deadline-cycles 1000000000

# ---- gradient-service smoke (serve --stdin) ----
# A mixed batch through the real request path: every line, valid or
# hostile, must come back classified, and the warm repeat must carry
# the cold request's digest bit-for-bit.

echo "== serve smoke (stdin batch) =="
printf '%s\n' \
  '{"id": 1, "flavor": "mpi", "nranks": 2, "niter": 2}' \
  '{"id": 2, "flavor": "mpi", "nranks": 2, "niter": 2}' \
  '{"id": 3, "flavor": "cuda"}' \
  '{"id": 4, "flavor": "mpi", "nranks": 2, "faults": "blackhole"}' \
  '{"id": 5, "flavor": "mpi", "nranks": 2, "deadline_cycles": 100}' \
  'garbage that is not json' \
  | $PARAD serve --stdin > /tmp/parad-serve.out 2>&1 || {
  echo "FAIL: serve --stdin crashed on the smoke batch"
  cat /tmp/parad-serve.out
  exit 1
}
for want in '"id":1,"class":"ok"' '"id":2,"class":"ok"' \
  '"id":3,"class":"invalid"' '"id":4,"class":"deadlock"' \
  '"id":5,"class":"deadline"' '"class":"invalid","code":2.*bad JSON' \
  '"event":"drained"'; do
  grep -q "$want" /tmp/parad-serve.out || {
    echo "FAIL: serve smoke output lacks $want"
    cat /tmp/parad-serve.out
    exit 1
  }
done
D1=$(grep '"id":1' /tmp/parad-serve.out | grep -o '"digest":"[0-9a-f]*"')
D2=$(grep '"id":2' /tmp/parad-serve.out | grep -o '"digest":"[0-9a-f]*"')
[ -n "$D1" ] && [ "$D1" = "$D2" ] || {
  echo "FAIL: warm digest differs from cold ($D1 vs $D2)"
  exit 1
}
grep -q '"id":2,"class":"ok","code":0,[^}]*"cached":true' /tmp/parad-serve.out || {
  echo "FAIL: repeat request did not hit the plan cache"
  exit 1
}

# ---- slam soak: the ISSUE 7 acceptance criterion ----
# >= 50 seeded mixed requests: everything classified, zero daemon
# crashes, breaker tripped and recovered, warm bit-identical to cold.

echo "== slam soak (50 seeded chaos requests) =="
expect_exit 0 slam --requests 50 --seed 42
tail -n 8 /tmp/parad-check.out

# ---- plan-cache warm-speedup gate ----
# The serve figure measures cold pipeline compiles vs warm LRU lookups
# through the real request path; the warm speedup must stay at or above
# the checked-in floor (bench/serve_threshold).

echo "== serve warm-plan gate =="
dune exec bench/main.exe -- --quick --figure serve > /tmp/parad-serve-bench.out 2>&1 || {
  echo "FAIL: serve benchmark did not run"
  cat /tmp/parad-serve-bench.out
  exit 1
}
tail -n 10 /tmp/parad-serve-bench.out
SP_MIN=$(cat bench/serve_threshold)
SP=$(grep -o '"name": "plan_cache",[^}]*' BENCH_serve.json \
  | grep -o '"warm_speedup": [0-9.]*' | awk '{print $2}')
[ -n "$SP" ] || {
  echo "FAIL: no plan_cache row in BENCH_serve.json"
  exit 1
}
awk -v s="$SP" -v t="$SP_MIN" 'BEGIN { exit !(s >= t) }' || {
  echo "FAIL: warm-plan speedup ${SP}x below floor ${SP_MIN}x"
  exit 1
}
SHED=$(grep -o '"name": "chaos",[^}]*' BENCH_serve.json \
  | grep -o '"shed": [0-9]*' | awk '{print $2}')
TRIPS=$(grep -o '"name": "chaos",[^}]*' BENCH_serve.json \
  | grep -o '"trips": [0-9]*' | awk '{print $2}')
[ "${SHED:-0}" -gt 0 ] && [ "${TRIPS:-0}" -gt 0 ] || {
  echo "FAIL: chaos row recorded no shedding/breaker trips (shed=$SHED trips=$TRIPS)"
  exit 1
}
echo "serve gate: warm speedup ${SP}x >= ${SP_MIN}x, chaos shed=$SHED trips=$TRIPS"

# ---- SDC campaign gate ----
# The sdc figure runs the seeded injection campaign (bit flips and
# message corruption on both apps). The contract: zero silent wrong
# gradients anywhere, detection coverage at or above the checked-in
# floor, and the pure protection overhead (armed seals, never-firing
# plan) at or below the checked-in ceiling. bench/sdc_threshold holds
# the floor (line 1, percent) and the ceiling (line 2, ratio).

echo "== SDC injection-campaign gate =="
dune exec bench/main.exe -- --quick --figure sdc > /tmp/parad-sdc-bench.out 2>&1 || {
  echo "FAIL: sdc benchmark did not run"
  cat /tmp/parad-sdc-bench.out
  exit 1
}
tail -n 12 /tmp/parad-sdc-bench.out
COV_MIN=$(sed -n 1p bench/sdc_threshold)
OVH_MAX=$(sed -n 2p bench/sdc_threshold)
SILENT=$(grep -o '"silent": [0-9]*' BENCH_sdc.json | awk '{s += $2} END {print s}')
[ "${SILENT:-1}" -eq 0 ] || {
  echo "FAIL: SDC campaign produced $SILENT silent wrong gradient(s)"
  exit 1
}
for ROWNAME in lulesh_mpi_flip lulesh_mpi_msg lulesh_mpi_msg_sticky bude_omp_flip; do
  COV=$(grep -o "\"name\": \"$ROWNAME\",[^}]*" BENCH_sdc.json \
    | grep -o '"coverage": [0-9.]*' | awk '{print $2}')
  [ -n "$COV" ] || {
    echo "FAIL: no $ROWNAME row in BENCH_sdc.json"
    exit 1
  }
  awk -v c="$COV" -v t="$COV_MIN" 'BEGIN { exit !(c >= t) }' || {
    echo "FAIL: $ROWNAME detection coverage ${COV}% below floor ${COV_MIN}%"
    exit 1
  }
done
POVH=$(grep -o '"name": "protect_clean",[^}]*' BENCH_sdc.json \
  | grep -o '"overhead": [0-9.]*' | awk '{print $2}')
[ -n "$POVH" ] || {
  echo "FAIL: no protect_clean row in BENCH_sdc.json"
  exit 1
}
awk -v o="$POVH" -v t="$OVH_MAX" 'BEGIN { exit !(o <= t) }' || {
  echo "FAIL: protection overhead ${POVH}x above ceiling ${OVH_MAX}x"
  exit 1
}
echo "sdc gate: silent=0, coverage >= ${COV_MIN}% on all campaigns, protect overhead ${POVH}x <= ${OVH_MAX}x"

# ---- execution-engine wall-clock gate ----
# The engine figure runs the headline LULESH OMP 64-thread gradient on
# all three substrates and records wall-clock from Stats.wall_ns in
# BENCH_engine.json. Gates: (1) every row must be bit-identical to the
# interpreter ("bitwise": true — fig_engine itself exits 1 otherwise);
# (2) the lowered sequential engine's speedup over the interpreter must
# stay at or above the checked-in floor (bench/engine_threshold);
# (3) on hosts with a real extra core for the domain pool, par must not
# be slower than seq.

echo "== execution-engine gate =="
dune exec bench/main.exe -- --quick --figure engine > /tmp/parad-eng.out 2>&1 || {
  echo "FAIL: engine benchmark did not run (or a gradient diverged)"
  cat /tmp/parad-eng.out
  exit 1
}
tail -n 12 /tmp/parad-eng.out
ENG_MIN=$(cat bench/engine_threshold)
if grep -q '"bitwise": false' BENCH_engine.json; then
  echo "FAIL: an engine row is not bit-identical to the interpreter"
  exit 1
fi
SEQ_ROW=$(grep -o '"name": "lulesh_omp/seq",[^}]*' BENCH_engine.json)
[ -n "$SEQ_ROW" ] || {
  echo "FAIL: no lulesh_omp/seq row in BENCH_engine.json"
  exit 1
}
SEQ_SP=$(echo "$SEQ_ROW" | grep -o '"speedup": [0-9.]*' | awk '{print $2}')
awk -v s="$SEQ_SP" -v t="$ENG_MIN" 'BEGIN { exit !(s >= t) }' || {
  echo "FAIL: seq engine speedup ${SEQ_SP}x below floor ${ENG_MIN}x"
  exit 1
}
CORES=$(echo "$SEQ_ROW" | grep -o '"cores": [0-9]*' | awk '{print $2}')
if [ "${CORES:-1}" -ge 2 ]; then
  SEQ_NS=$(echo "$SEQ_ROW" | grep -o '"wall_ns": [0-9]*' | awk '{print $2}')
  PAR_NS=$(grep -o '"name": "lulesh_omp/par",[^}]*' BENCH_engine.json \
    | grep -o '"wall_ns": [0-9]*' | awk '{print $2}')
  [ "${PAR_NS:-0}" -le "${SEQ_NS:-0}" ] || {
    echo "FAIL: par engine (${PAR_NS} ns) slower than seq (${SEQ_NS} ns) on a ${CORES}-core host"
    exit 1
  }
fi
echo "engine gate: seq ${SEQ_SP}x >= ${ENG_MIN}x, bit-identical on all rows (cores=${CORES})"

# ---- batched multi-seed adjoint gate ----
# The batch figure runs one k-lane batched reverse sweep against k
# sequential single-seed gradients on the same engine and records both
# in BENCH_batch.json. Gates: (1) every lane column must be
# bit-identical to its standalone run ("bitwise": true — fig_batch
# itself exits 1 otherwise); (2) the lulesh_omp/k8 amortization must
# stay at or above the checked-in floor (bench/batch_threshold).

echo "== batched-adjoint gate =="
dune exec bench/main.exe -- --quick --figure batch > /tmp/parad-batch.out 2>&1 || {
  echo "FAIL: batch benchmark did not run (or a lane diverged)"
  cat /tmp/parad-batch.out
  exit 1
}
tail -n 10 /tmp/parad-batch.out
BATCH_MIN=$(cat bench/batch_threshold)
if grep -q '"bitwise": false' BENCH_batch.json; then
  echo "FAIL: a batched lane is not bit-identical to its standalone run"
  exit 1
fi
K8_ROW=$(grep -o '"name": "lulesh_omp/k8",[^}]*' BENCH_batch.json)
[ -n "$K8_ROW" ] || {
  echo "FAIL: no lulesh_omp/k8 row in BENCH_batch.json"
  exit 1
}
K8_SP=$(echo "$K8_ROW" | grep -o '"speedup": [0-9.]*' | awk '{print $2}')
awk -v s="$K8_SP" -v t="$BATCH_MIN" 'BEGIN { exit !(s >= t) }' || {
  echo "FAIL: batched k=8 speedup ${K8_SP}x below floor ${BATCH_MIN}x"
  exit 1
}
echo "batch gate: k=8 ${K8_SP}x >= ${BATCH_MIN}x, every lane bit-identical"

echo "all checks passed"
