(* Batched multi-seed adjoints (ISSUE 10): a plan compiled with
   [Plan.options.seeds = k > 1] runs one forward/taping pass and one
   reverse sweep that propagates k return seeds through k-stride adjoint
   planes. Every lane column must be bit-identical to a standalone
   single-seed gradient with the same seed — batching is a layout
   change, not a numeric one — and the engine path must agree with the
   interpreter bit-for-bit with an identical virtual makespan. *)

module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude
module Plan = Parad_core.Plan
module Engine = Parad_engine.Engine

let tiny = { L.nx = 2; ny = 2; nz = 4; niter = 3; dt0 = 0.01; escale = 1.0 }
let small = MB.deck ~nposes:6 ~natlig:3 ~natpro:4
let d_rets = [| 1.0; -0.5; 2.0; 0.25 |]

let bits_eq name (a : float array) (b : float array) =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      Alcotest.(check int64)
        (Printf.sprintf "%s[%d]" name i)
        (Int64.bits_of_float x)
        (Int64.bits_of_float b.(i)))
    a

let batched_plan flavor =
  L.compile ~opts:{ Plan.default_options with seeds = Array.length d_rets }
    flavor

let lanes_match_standalone flavor ~nthreads ~engine () =
  let c = batched_plan flavor in
  let c1 = L.compile flavor in
  let cols = L.gradient_batched ~nthreads ~engine c ~d_rets tiny in
  Array.iteri
    (fun lane (g : L.grad_result) ->
      let solo =
        L.gradient_compiled ~nthreads ~engine ~d_ret:d_rets.(lane) c1 tiny
      in
      bits_eq
        (Printf.sprintf "lane %d d_coords" lane)
        solo.L.d_coords.(0) g.L.d_coords.(0);
      bits_eq
        (Printf.sprintf "lane %d d_energy" lane)
        solo.L.d_energy.(0) g.L.d_energy.(0))
    cols

let test_engine_matches_interp () =
  (* the seq engine's batched sweep must agree with the interpreter
     bit-for-bit, with an identical virtual makespan *)
  let c = batched_plan L.Omp in
  let gi = L.gradient_batched ~nthreads:4 ~engine:Engine.Interp c ~d_rets tiny in
  let ge = L.gradient_batched ~nthreads:4 ~engine:Engine.Seq c ~d_rets tiny in
  Array.iteri
    (fun lane (i : L.grad_result) ->
      let e = ge.(lane) in
      bits_eq
        (Printf.sprintf "lane %d d_coords" lane)
        i.L.d_coords.(0) e.L.d_coords.(0);
      bits_eq
        (Printf.sprintf "lane %d d_energy" lane)
        i.L.d_energy.(0) e.L.d_energy.(0);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "lane %d makespan" lane)
        i.L.g_makespan e.L.g_makespan)
    gi

let test_minibude_lanes () =
  let ge_seeds = [| 1.0; 0.5; -2.0 |] in
  let opts = { Plan.default_options with seeds = Array.length ge_seeds } in
  let c = MB.compile ~opts ~ntasks:4 MB.Omp in
  let c1 = MB.compile ~ntasks:4 MB.Omp in
  let cols = MB.gradient_batched ~nthreads:4 c ~ge_seeds small in
  Array.iteri
    (fun lane (g : MB.grad_result) ->
      let solo =
        MB.gradient_compiled ~nthreads:4 ~ge_seed:ge_seeds.(lane) c1 small
      in
      bits_eq (Printf.sprintf "lane %d d_lig" lane) solo.MB.d_lig g.MB.d_lig;
      bits_eq (Printf.sprintf "lane %d d_pro" lane) solo.MB.d_pro g.MB.d_pro;
      bits_eq
        (Printf.sprintf "lane %d d_poses" lane)
        solo.MB.d_poses g.MB.d_poses)
    cols

let test_single_lane_is_classic () =
  (* a 1-lane batched run is the classic gradient exactly *)
  let c = L.compile ~opts:{ Plan.default_options with seeds = 1 } L.Seq in
  let g = (L.gradient_batched c ~d_rets:[| 1.0 |] tiny).(0) in
  let solo = L.gradient_compiled c tiny in
  bits_eq "d_coords" solo.L.d_coords.(0) g.L.d_coords.(0);
  bits_eq "d_energy" solo.L.d_energy.(0) g.L.d_energy.(0)

let test_mpi_rejected () =
  (* the MPI adjoint runtime exchanges single-stride planes: batched
     compilation of a distributed flavor must be rejected up front *)
  Alcotest.check_raises "mpi seeds>1"
    (Plan.Unsupported
       "batched seeds (k>1) cannot differentiate \"mpi.isend\"")
    (fun () ->
      ignore (L.compile ~opts:{ Plan.default_options with seeds = 2 } L.Mpi))

let test_seed_count_checked () =
  let c = batched_plan L.Seq in
  match L.gradient_batched c ~d_rets:[| 1.0 |] tiny with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "batch"
    [
      ( "lanes",
        [
          Alcotest.test_case "lulesh seq lanes == standalone" `Quick
            (lanes_match_standalone L.Seq ~nthreads:1 ~engine:Engine.Interp);
          Alcotest.test_case "lulesh omp lanes == standalone" `Quick
            (lanes_match_standalone L.Omp ~nthreads:4 ~engine:Engine.Interp);
          Alcotest.test_case "engine seq == interp" `Quick
            test_engine_matches_interp;
          Alcotest.test_case "minibude omp lanes == standalone" `Quick
            test_minibude_lanes;
          Alcotest.test_case "1-lane batch == classic" `Quick
            test_single_lane_is_classic;
        ] );
      ( "guards",
        [
          Alcotest.test_case "mpi rejected" `Quick test_mpi_rejected;
          Alcotest.test_case "seed count checked" `Quick
            test_seed_count_checked;
        ] );
    ]
