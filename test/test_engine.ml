(* Execution engine (ISSUE 9): the lowered slot-addressed runners must be
   bit-identical to the tree-walking interpreter — same gradients by FNV
   digest, same virtual-time makespan, same instruction counts — across
   every app x flavor program, and the structured-failure machinery
   (deadlines, fault kills, SDC detection) must behave identically on the
   engine path. *)

module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude
module E = Parad_engine.Engine
module S = Parad_server.Service
open Parad_runtime

(* run the par tests on a real 2-domain pool even on single-core hosts:
   the pool is global and lazy, so the size must be pinned before the
   first engine=Par execution *)
let () = if Sys.getenv_opt "PARAD_DOMAINS" = None then Unix.putenv "PARAD_DOMAINS" "2"

let tiny = { L.nx = 2; ny = 2; nz = 4; niter = 3; dt0 = 0.01; escale = 1.0 }

let lulesh_flavors =
  [
    L.Seq, 1, 1;
    L.Omp, 4, 1;
    L.Raja_, 3, 1;
    L.Mpi, 1, 2;
    L.Hybrid, 2, 2;
    L.RajaMpi, 2, 2;
    L.Jlmpi, 1, 2;
  ]

let check_same name (a : L.grad_result) (b : L.grad_result) =
  Alcotest.(check string)
    (name ^ " digest") (S.digest_lulesh a) (S.digest_lulesh b);
  Alcotest.(check (float 0.0))
    (name ^ " makespan") a.L.g_makespan b.L.g_makespan;
  Alcotest.(check int)
    (name ^ " instrs") a.L.g_stats.Stats.instrs b.L.g_stats.Stats.instrs;
  Alcotest.(check int)
    (name ^ " flops") a.L.g_stats.Stats.flops b.L.g_stats.Stats.flops;
  Alcotest.(check int)
    (name ^ " atomics") a.L.g_stats.Stats.atomics b.L.g_stats.Stats.atomics;
  Alcotest.(check int)
    (name ^ " barriers") a.L.g_stats.Stats.barriers b.L.g_stats.Stats.barriers

let test_lulesh_bit_identity () =
  List.iter
    (fun (flavor, nthreads, nranks) ->
      let c = L.compile flavor in
      let g engine = L.gradient_compiled ~nthreads ~nranks ~engine c tiny in
      let base = g E.Interp in
      check_same (L.flavor_name flavor ^ " seq") base (g E.Seq);
      check_same (L.flavor_name flavor ^ " par") base (g E.Par))
    lulesh_flavors

let bude_inp = MB.deck ~nposes:12 ~natlig:6 ~natpro:10

let test_bude_bit_identity () =
  List.iter
    (fun variant ->
      let c = MB.compile ~ntasks:3 variant in
      let g engine = MB.gradient_compiled ~engine c bude_inp in
      let base = g E.Interp in
      let check name (x : MB.grad_result) =
        Alcotest.(check string)
          (MB.variant_name variant ^ " " ^ name ^ " digest")
          (S.digest_bude base) (S.digest_bude x);
        Alcotest.(check (float 0.0))
          (MB.variant_name variant ^ " " ^ name ^ " makespan")
          base.MB.g_makespan x.MB.g_makespan;
        Alcotest.(check int)
          (MB.variant_name variant ^ " " ^ name ^ " instrs")
          base.MB.g_stats.Stats.instrs x.MB.g_stats.Stats.instrs
      in
      check "seq" (g E.Seq);
      check "par" (g E.Par))
    [ MB.Seq; MB.Omp; MB.Julia ]

let test_primal_identity () =
  (* primal runs (Exec.run / run_spmd with the engine's call) agree too *)
  let base = (L.run L.Omp ~nthreads:4 tiny).L.total_energy in
  List.iter
    (fun engine ->
      let r = L.run ~nthreads:4 ~engine L.Omp tiny in
      Alcotest.(check (float 0.0))
        ("omp primal " ^ E.choice_to_string engine)
        base r.L.total_energy)
    [ E.Seq; E.Par ];
  let eb = (MB.run ~nthreads:3 MB.Julia bude_inp).MB.energies in
  let es = (MB.run ~nthreads:3 ~engine:E.Seq MB.Julia bude_inp).MB.energies in
  Alcotest.(check bool) "julia primal energies" true (eb = es)

let test_binomial_engine_identity () =
  (* the revolve driver's inner runs ride the engine and must reproduce
     the monolithic interpreter gradient bit-for-bit *)
  let c = L.compile ~steps:true L.Omp in
  let mono = L.gradient_compiled ~nthreads:4 c tiny in
  let b = L.gradient_binomial ~nthreads:4 ~engine:E.Seq ~compiled:c ~budget:2
      L.Omp tiny
  in
  Alcotest.(check string)
    "binomial seq-engine digest" (S.digest_lulesh mono)
    (S.digest_lulesh b.L.b_grad)

let test_deadline_identical () =
  (* a virtual-cycle deadline trips at the exact same virtual clock on
     both substrates (exit class 6 at the CLI) *)
  let c = L.compile L.Omp in
  let deadline = { Sim.dl_cycles = Some 50_000.0; dl_wall_ms = None } in
  let hit engine =
    match L.gradient_compiled ~nthreads:4 ~deadline ~engine c tiny with
    | _ -> Alcotest.fail "deadline did not trip"
    | exception Sim.Deadline_exceeded d -> d.Sim.de_at
  in
  Alcotest.(check (float 0.0))
    "same trip clock" (hit E.Interp) (hit E.Seq)

let test_kill_recovery_on_engine () =
  (* supervised recovery with a rank kill on the engine path converges to
     the faultless interpreter digest *)
  let c = L.compile L.Mpi in
  let clean = L.gradient_compiled ~nranks:2 c tiny in
  let plan = Faults.plan_of_spec ~nranks:2 "kill:victim=1,at=60000" in
  let faulty, recov =
    L.gradient_recoverable_compiled ~nranks:2 ~faults:plan ~max_restarts:3
      ~engine:E.Seq c tiny
  in
  Alcotest.(check string)
    "recovered digest" (S.digest_lulesh clean) (S.digest_lulesh faulty);
  Alcotest.(check bool) "restarted" true (recov.Exec.r_restarts >= 1)

let test_sdc_detected_on_engine () =
  (* an unsupervised bit flip must still surface as a structured
     Corrupt_region (exit class 9) when the run executes on the engine *)
  let c = L.compile L.Mpi in
  let plan = Faults.plan_of_spec ~nranks:2 "none:flip=1@3@31@50" in
  match L.gradient_compiled ~nranks:2 ~faults:plan ~engine:E.Seq c tiny with
  | _ -> Alcotest.fail "flip not detected on engine path"
  | exception Checkpoint.Corrupt_region { cr_rank; _ } ->
    Alcotest.(check int) "victim rank named" 1 cr_rank

let test_wall_ns_populated () =
  let c = L.compile L.Omp in
  let g = L.gradient_compiled ~nthreads:4 ~engine:E.Seq c tiny in
  Alcotest.(check bool) "wall_ns measured" true (g.L.g_stats.Stats.wall_ns > 0)

let () =
  Alcotest.run "engine"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "lulesh all flavors" `Quick
            test_lulesh_bit_identity;
          Alcotest.test_case "minibude all variants" `Quick
            test_bude_bit_identity;
          Alcotest.test_case "primal runs" `Quick test_primal_identity;
          Alcotest.test_case "binomial driver" `Quick
            test_binomial_engine_identity;
        ] );
      ( "structured failures",
        [
          Alcotest.test_case "deadline same clock" `Quick
            test_deadline_identical;
          Alcotest.test_case "kill recovery" `Quick
            test_kill_recovery_on_engine;
          Alcotest.test_case "sdc detection" `Quick
            test_sdc_detected_on_engine;
          Alcotest.test_case "wall_ns" `Quick test_wall_ns_populated;
        ] );
    ]
