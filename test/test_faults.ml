(* Fault injection, structured deadlock diagnosis, and the post-run
   communication audit. *)

open Parad_ir
open Parad_runtime
module B = Builder
module V = Value
module CC = Parad_verify.Comm_check
module GC = Parad_verify.Grad_check

let feq = Alcotest.float 1e-9

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains what s sub =
  Alcotest.(check bool)
    (Printf.sprintf "%s mentions %S (got: %s)" what sub s)
    true (contains s sub)

(* non-differentiable ring: isend rank value to next, recv from prev *)
let ring_prog ?(send_tag = 7) ?(recv_tag = 7) ?(wait_send = true) () =
  let prog = Prog.create () in
  let b, _ = B.func prog "ring" ~params:[] ~ret:Ty.Float in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let next = B.rem b (B.add b rank (B.i64 b 1)) size in
  let prev = B.rem b (B.add b rank (B.sub b size (B.i64 b 1))) size in
  let sendbuf = B.alloc b Ty.Float (B.i64 b 1) in
  let recvbuf = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b sendbuf (B.i64 b 0) (B.to_float b rank);
  let one = B.i64 b 1 in
  let sreq =
    B.call b ~ret:Ty.Int "mpi.isend"
      [ sendbuf; one; next; B.i64 b send_tag ]
  in
  let rreq =
    B.call b ~ret:Ty.Int "mpi.irecv"
      [ recvbuf; one; prev; B.i64 b recv_tag ]
  in
  if wait_send then ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  B.return b (Some (B.load b recvbuf (B.i64 b 0)));
  ignore (B.finish b);
  prog

let run_ring ?faults ?mpi_ref ?(prog = ring_prog ()) ~nranks () =
  Exec.run_spmd ?faults ?mpi_ref prog ~nranks ~fname:"ring"
    ~setup:(fun _ ~rank:_ -> [])

(* ---- structured diagnosis of classic failure paths ---- *)

let test_tag_mismatch () =
  (* every send uses tag 1, every recv expects tag 2: all recvs block and
     the diagnosis must say which tag each rank is stuck on *)
  let prog = ring_prog ~send_tag:1 ~recv_tag:2 ~wait_send:false () in
  match run_ring ~prog ~nranks:3 () with
  | _ -> Alcotest.fail "tag mismatch not detected"
  | exception Sim.Deadlock d ->
    Alcotest.(check int) "all ranks parked" 3 (List.length d.Sim.d_blocked);
    let s = Sim.diagnosis_to_string d in
    check_contains "diagnosis" s "tag 2";
    check_contains "diagnosis" s "no matching send"

let test_collective_missing_rank () =
  (* rank 1 skips the allreduce: the others' diagnosis must name it *)
  let prog = Prog.create () in
  let b, _ = B.func prog "skip" ~params:[] ~ret:Ty.Float in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let c = B.eq b rank (B.i64 b 1) in
  let r =
    B.if_ b c ~results:[ Ty.Float ]
      ~then_:(fun () -> [ B.f64 b 0.0 ])
      ~else_:(fun () ->
        let s = B.alloc b Ty.Float (B.i64 b 1) in
        let out = B.alloc b Ty.Float (B.i64 b 1) in
        B.store b s (B.i64 b 0) (B.to_float b rank);
        ignore
          (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ s; out; B.i64 b 1 ]);
        [ B.load b out (B.i64 b 0) ])
  in
  B.return b (Some (List.hd r));
  ignore (B.finish b);
  let mpi_ref = ref None in
  match
    Exec.run_spmd ~mpi_ref prog ~nranks:4 ~fname:"skip"
      ~setup:(fun _ ~rank:_ -> [])
  with
  | _ -> Alcotest.fail "missing collective rank not detected"
  | exception Sim.Deadlock d ->
    let s = Sim.diagnosis_to_string d in
    check_contains "diagnosis" s "allreduce";
    check_contains "diagnosis" s "waiting for rank(s) [1]";
    let issues = CC.audit (Option.get !mpi_ref) in
    let incomplete =
      List.exists
        (function
          | CC.Incomplete_collective { missing; _ } -> missing = [ 1 ]
          | _ -> false)
        issues
    in
    Alcotest.(check bool) "audit reports rank 1 missing" true incomplete

let test_unwaited_isend () =
  (* recv with mpi.recv (blocking), never wait on the isend request: the
     run completes but the audit must flag the unobserved request *)
  let prog = Prog.create () in
  let b, _ = B.func prog "uw" ~params:[] ~ret:Ty.Float in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let next = B.rem b (B.add b rank (B.i64 b 1)) size in
  let prev = B.rem b (B.add b rank (B.sub b size (B.i64 b 1))) size in
  let sendbuf = B.alloc b Ty.Float (B.i64 b 1) in
  let recvbuf = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b sendbuf (B.i64 b 0) (B.to_float b rank);
  let one = B.i64 b 1 and tag = B.i64 b 5 in
  ignore (B.call b ~ret:Ty.Int "mpi.isend" [ sendbuf; one; next; tag ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.recv" [ recvbuf; one; prev; tag ]);
  B.return b (Some (B.load b recvbuf (B.i64 b 0)));
  ignore (B.finish b);
  let mpi_ref = ref None in
  let res =
    Exec.run_spmd ~mpi_ref prog ~nranks:3 ~fname:"uw"
      ~setup:(fun _ ~rank:_ -> [])
  in
  Array.iteri
    (fun rank v ->
      Alcotest.check feq
        (Printf.sprintf "rank %d value" rank)
        (float_of_int ((rank + 2) mod 3))
        (V.to_float v))
    res.Exec.values;
  let issues = CC.audit (Option.get !mpi_ref) in
  let unwaited =
    List.filter
      (function CC.Unwaited_request { kind = "isend"; _ } -> true | _ -> false)
      issues
  in
  Alcotest.(check int) "one unwaited isend per rank" 3 (List.length unwaited)

(* ---- fault plans ---- *)

let test_drop_retry_transparent () =
  (* recoverable drops: identical values, larger makespan, counted
     retries, nothing lost *)
  let clean = run_ring ~nranks:5 () in
  let plan = Faults.plan_of_name ~nranks:5 "drop-retry" in
  let faulty = run_ring ~faults:plan ~nranks:5 () in
  Array.iteri
    (fun rank v ->
      Alcotest.check feq
        (Printf.sprintf "rank %d value unchanged" rank)
        (V.to_float clean.Exec.values.(rank))
        (V.to_float v))
    faulty.Exec.values;
  Alcotest.(check bool)
    (Printf.sprintf "makespan grows (%.0f -> %.0f)" clean.Exec.makespan
       faulty.Exec.makespan)
    true
    (faulty.Exec.makespan > clean.Exec.makespan);
  Alcotest.(check int)
    "two retries per message" 10 faulty.Exec.stats.Stats.send_retries;
  Alcotest.(check int) "nothing lost" 0 faulty.Exec.stats.Stats.messages_lost

let test_seeded_drop_diagnosis_deterministic () =
  (* an unrecoverable seeded fault must produce a byte-identical
     diagnosis and audit across two executions *)
  let go () =
    let plan = Faults.plan_of_name ~seed:7 ~rank:1 ~nranks:4 "blackhole" in
    let mpi_ref = ref None in
    match run_ring ~faults:plan ~mpi_ref ~nranks:4 () with
    | _ -> Alcotest.fail "blackhole did not deadlock"
    | exception Sim.Deadlock d ->
      ( Sim.diagnosis_to_string d,
        CC.report (CC.audit (Option.get !mpi_ref)) )
  in
  let d1, a1 = go () and d2, a2 = go () in
  Alcotest.(check string) "diagnosis byte-identical" d1 d2;
  Alcotest.(check string) "audit byte-identical" a1 a2;
  check_contains "diagnosis" d1 "lost by fault injection";
  check_contains "audit" a1 "lost message: rank 1"

let test_flaky_deterministic_values () =
  (* seeded random attempt drops are always recovered and reproducible *)
  let plan = Faults.plan_of_name ~seed:3 ~nranks:5 "flaky" in
  let a = run_ring ~faults:plan ~nranks:5 () in
  let b = run_ring ~faults:plan ~nranks:5 () in
  Alcotest.(check (float 0.0))
    "same makespan across reruns" a.Exec.makespan b.Exec.makespan;
  Alcotest.(check int)
    "same retries across reruns" a.Exec.stats.Stats.send_retries
    b.Exec.stats.Stats.send_retries;
  let clean = run_ring ~nranks:5 () in
  Array.iteri
    (fun rank v ->
      Alcotest.check feq
        (Printf.sprintf "rank %d value unchanged" rank)
        (V.to_float clean.Exec.values.(rank))
        (V.to_float v))
    a.Exec.values

let test_kill_names_victim () =
  (* a killed rank no longer silently deadlocks its peers: a surviving
     rank raises a structured notification naming the victim, the
     survivor set, and the deterministic agreement time *)
  let plan = Faults.plan_of_name ~rank:2 ~nranks:4 "kill" in
  match run_ring ~faults:plan ~nranks:4 () with
  | _ -> Alcotest.fail "killed rank did not raise a structured failure"
  | exception Mpi_state.Rank_failed n ->
    Alcotest.(check int) "victim named" 2 n.Mpi_state.fn_failed;
    Alcotest.(check (list int))
      "survivor set" [ 0; 1; 3 ] n.Mpi_state.fn_survivors;
    Alcotest.(check bool)
      "agreement charged to virtual time" true
      (n.Mpi_state.fn_agreed_at > n.Mpi_state.fn_observed_at);
    check_contains "failure report"
      (Format.asprintf "%a" Mpi_state.pp_failure n)
      "rank 2 killed"

let test_recv_from_dead_immediate () =
  (* a receive posted against an already-dead rank observes the failure
     at post time — not after a retry deadline. In the ring, rank 2 dies
     at its first MPI call, so rank 3's later irecv from rank 2 hits a
     dead peer. *)
  let plan = Faults.plan_of_spec ~nranks:4 "kill:victim=2,deadline=1e12" in
  match run_ring ~faults:plan ~nranks:4 () with
  | _ -> Alcotest.fail "no failure raised"
  | exception Mpi_state.Rank_failed n ->
    Alcotest.(check int)
      "observed by the posting rank" 3 n.Mpi_state.fn_observed_by;
    Alcotest.(check bool)
      "observed long before the retry deadline" true
      (n.Mpi_state.fn_observed_at < 1e6)

let test_plan_spec_overrides () =
  let p =
    Faults.plan_of_spec ~nranks:8 "kill:victim=3,at=500,kill=5@1000,retries=9"
  in
  Alcotest.(check int) "retries override" 9 p.Faults.max_retries;
  Alcotest.(check (list (pair int (float 0.0))))
    "two kills" [ 3, 500.0; 5, 1000.0 ] p.Faults.kills;
  Alcotest.(check string)
    "plan named after the full spec" "kill:victim=3,at=500,kill=5@1000,retries=9"
    p.Faults.name;
  let p' = Faults.consume_kill p ~rank:3 in
  Alcotest.(check (list (pair int (float 0.0))))
    "fired kill consumed" [ 5, 1000.0 ] p'.Faults.kills;
  (match Faults.plan_of_spec ~nranks:4 "kill:bogus=1" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown override key accepted");
  match Faults.plan_of_spec ~nranks:4 "stall:stall=2@0" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "malformed stall override accepted"

let test_plan_spec_rejects () =
  (* every malformed spec must fail loudly with a message naming the
     problem — never parse to a silently-inert plan *)
  let expect_bad what sub spec =
    match Faults.plan_of_spec ~nranks:4 spec with
    | exception Invalid_argument msg -> check_contains what msg sub
    | _ -> Alcotest.fail (Printf.sprintf "%s: %S accepted" what spec)
  in
  expect_bad "unknown plan name" "unknown plan" "typo-plan";
  expect_bad "unknown override key" "unknown key" "drop-retry:bogus=1";
  expect_bad "non-integer retries" "retries" "drop-retry:retries=many";
  (* out-of-range ranks would make the plan silently never fire *)
  expect_bad "victim out of range" "out of range" "kill:victim=9";
  expect_bad "negative victim" "out of range" "stall:victim=-1";
  expect_bad "kill rank out of range" "out of range" "none:kill=7@100";
  expect_bad "stall rank out of range" "out of range" "none:stall=4@0@50";
  (* in-range explicit targets still parse *)
  let p = Faults.plan_of_spec ~nranks:4 "none:kill=3@100,stall=0@5@50" in
  Alcotest.(check (list (pair int (float 0.0))))
    "in-range kill kept" [ 3, 100.0 ] p.Faults.kills;
  match Faults.plan_of_name ~rank:5 ~nranks:4 "kill" with
  | exception Invalid_argument msg ->
    check_contains "plan_of_name victim range" msg "out of range"
  | _ -> Alcotest.fail "plan_of_name accepted victim 5 of 4 ranks"

let test_duplicate_flagged_by_audit () =
  let plan = Faults.plan_of_name ~nranks:3 "dup" in
  let mpi_ref = ref None in
  let res = run_ring ~faults:plan ~mpi_ref ~nranks:3 () in
  Alcotest.(check int)
    "one duplicate injected" 1 res.Exec.stats.Stats.messages_duplicated;
  let issues = CC.audit (Option.get !mpi_ref) in
  let dup_send =
    List.exists
      (function CC.Unmatched_send { msgs = 1; _ } -> true | _ -> false)
      issues
  in
  Alcotest.(check bool) "audit flags the extra copy" true dup_send

(* ---- gradients under injection (acceptance criterion) ---- *)

(* differentiable ring: isend x to next, irecv y from prev, return
   x[0]*2 + y[0]*3 so the adjoint flows through the message *)
let grad_ring_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "gring"
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let next = B.rem b (B.add b rank (B.i64 b 1)) size in
  let prev = B.rem b (B.add b rank (B.sub b size (B.i64 b 1))) size in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 9 in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  let x0 = B.load b x (B.i64 b 0) in
  let y0 = B.load b y (B.i64 b 0) in
  B.return b
    (Some
       (B.add b
          (B.mul b x0 (B.f64 b 2.0))
          (B.mul b y0 (B.f64 b 3.0))));
  ignore (B.finish b);
  prog

let test_gradient_under_drop_retry () =
  (* retransmits change only virtual time, so reverse mode under a
     recoverable fault plan must still match finite differences *)
  let prog = grad_ring_prog () in
  let plan = Faults.plan_of_name ~nranks:3 "drop-retry" in
  let n = 2 in
  match
    GC.check_spmd prog "gring" ~nranks:3 ~faults:plan
      ~args:(fun ~rank ->
        [
          GC.ABuf (Array.init n (fun i -> 0.4 +. float_of_int (rank + i)));
          GC.AInt n;
        ])
      ~seeds:(fun ~rank:_ -> [ Array.make n 0.0 ])
      ~d_ret:(fun ~rank -> if rank = 0 then 1.0 else 0.0)
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "gradient under drop-retry: %s" m

let test_gradient_drop_retry_bitwise () =
  (* stronger than FD agreement: the adjoints themselves are bitwise
     unchanged by a recoverable plan *)
  let prog = grad_ring_prog () in
  let n = 2 in
  let args ~rank =
    [
      GC.ABuf (Array.init n (fun i -> 0.4 +. float_of_int (rank + i)));
      GC.AInt n;
    ]
  in
  let seeds ~rank:_ = [ Array.make n 0.0 ] in
  let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
  let grad faults =
    (GC.reverse_spmd ?faults ~nranks:3 ~args ~seeds ~d_ret prog "gring")
      .GC.s_d_bufs
  in
  let clean = grad None in
  let plan = Faults.plan_of_name ~nranks:3 "drop-retry" in
  let faulty = grad (Some plan) in
  Array.iteri
    (fun rank bufs ->
      List.iteri
        (fun bi arr ->
          Array.iteri
            (fun i d ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "rank %d buf %d adjoint %d" rank bi i)
                (List.nth clean.(rank) bi).(i)
                d)
            arr)
        bufs)
    faulty

let test_gradient_coalesced_plans_transparent () =
  (* Recoverable drop and delay plans act on the *packed* adjoint
     batches (Mpi_state.packed_tag) exactly as on forward traffic; both
     change only virtual time, so the LULESH MPI gradient stays bitwise
     identical to the faultless run and the audit stays clean. *)
  let module L = Apps_lulesh.Lulesh in
  let tiny =
    { L.nx = 2; ny = 2; nz = 4; niter = 2; dt0 = 0.01; escale = 1.0 }
  in
  let grad faults =
    let mpi_ref = ref None in
    let g = L.gradient ~nranks:4 ?faults ~mpi_ref L.Mpi tiny in
    (match CC.audit (Option.get !mpi_ref) with
    | [] -> ()
    | issues -> Alcotest.failf "audit under plan: %s" (CC.report issues));
    g
  in
  let clean = grad None in
  Alcotest.(check bool)
    "packed adjoint batches in flight" true
    (clean.L.g_stats.Stats.msgs_sent > 0);
  List.iter
    (fun plan_name ->
      let plan = Faults.plan_of_name ~nranks:4 plan_name in
      let faulty = grad (Some plan) in
      Array.iteri
        (fun r (on : float array) ->
          Array.iteri
            (fun i x ->
              Alcotest.(check int64)
                (Printf.sprintf "%s rank %d d_x[%d]" plan_name r i)
                (Int64.bits_of_float clean.L.d_coords.(r).(i))
                (Int64.bits_of_float x))
            on)
        faulty.L.d_coords)
    [ "drop-retry"; "delay" ]

(* ---- silent data corruption: inject, detect, recover ---- *)

let test_plan_spec_sdc_roundtrip () =
  (* flip and corrupt-msg keys parse to structured plan entries and
     render back through pp_plan naming every field *)
  let p =
    Faults.plan_of_spec ~nranks:4 "none:flip=1@5@40@100,corrupt-msg=2@7@sticky"
  in
  Alcotest.(check bool)
    "flip entry parsed" true
    (p.Faults.flips = [ 1, 5, 40, 100.0 ]);
  Alcotest.(check bool)
    "corrupt entry parsed" true
    (p.Faults.corrupts = [ 2, 7, true ]);
  let s = Format.asprintf "%a" Faults.pp_plan p in
  check_contains "pp_plan" s "flip rank 1 cell 5 bit 40 at t>=100";
  check_contains "pp_plan" s "corrupt packed msg #2 byte 7 (sticky)";
  (* spec keys append to the named plan's defaults; consume_* drops
     entries in order *)
  let p = Faults.plan_of_spec ~nranks:4 "flip:flip=0@9@1@2" in
  Alcotest.(check int) "append to default flip" 2 (List.length p.Faults.flips);
  let p = Faults.consume_flip p ~rank:1 in
  Alcotest.(check bool)
    "rank 1 default consumed" true
    (p.Faults.flips = [ 0, 9, 1, 2.0 ]);
  let p = Faults.plan_of_spec ~nranks:2 "none:corrupt-msg=1@3@sticky" in
  let p = Faults.consume_corrupt p in
  Alcotest.(check bool) "sticky corrupt consumed" true (p.Faults.corrupts = [])

let test_plan_spec_sdc_rejects () =
  let expect_bad what sub spec =
    match Faults.plan_of_spec ~nranks:4 spec with
    | exception Invalid_argument msg -> check_contains what msg sub
    | _ -> Alcotest.fail (Printf.sprintf "%s: %S accepted" what spec)
  in
  (* scalar keys may appear at most once: a silently-ignored second
     value would make a campaign spec lie about what it injects *)
  expect_bad "duplicate at" "at most once" "kill:at=0,at=500";
  expect_bad "duplicate retries" "at most once"
    "drop-retry:retries=2,retries=9";
  expect_bad "duplicate victim" "at most once" "kill:victim=1,victim=2";
  (* malformed SDC keys *)
  expect_bad "flip rank out of range" "out of range" "none:flip=7@0@31@0";
  expect_bad "flip bit out of range" "bit" "none:flip=0@0@64@0";
  expect_bad "corrupt ordinal" "ordinal" "none:corrupt-msg=0";
  expect_bad "corrupt bad sticky" "sticky" "none:corrupt-msg=1@3@bogus"

let tiny_lulesh =
  let module L = Apps_lulesh.Lulesh in
  { L.nx = 2; ny = 2; nz = 4; niter = 2; dt0 = 0.01; escale = 1.0 }

let check_bitwise_coords what (clean : float array array)
    (faulty : float array array) =
  Array.iteri
    (fun r (on : float array) ->
      Array.iteri
        (fun i x ->
          Alcotest.(check int64)
            (Printf.sprintf "%s rank %d d_x[%d]" what r i)
            (Int64.bits_of_float clean.(r).(i))
            (Int64.bits_of_float x))
        on)
    faulty

let test_corrupt_msg_retransmit_bitwise () =
  (* a damaged in-flight packed adjoint batch is caught by its checksum
     trailer before unpack and retransmitted from the sender's staging
     copy: the gradient is bitwise identical, only virtual time and the
     SDC counters move *)
  let module L = Apps_lulesh.Lulesh in
  let clean = L.gradient ~nranks:4 L.Mpi tiny_lulesh in
  let plan = Faults.plan_of_spec ~nranks:4 "none:corrupt-msg=1@9" in
  let faulty = L.gradient ~nranks:4 ~faults:plan L.Mpi tiny_lulesh in
  check_bitwise_coords "corrupt-msg" clean.L.d_coords faulty.L.d_coords;
  let s = faulty.L.g_stats in
  Alcotest.(check int) "one corruption injected" 1 s.Stats.sdc_injected;
  Alcotest.(check int) "detected by trailer" 1 s.Stats.sdc_detected;
  Alcotest.(check int) "recovered in place" 1 s.Stats.sdc_recovered;
  Alcotest.(check bool)
    "at least one retransmit" true (s.Stats.msgs_retransmitted >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "retransmit charged to virtual time (%.0f -> %.0f)"
       clean.L.g_makespan faulty.L.g_makespan)
    true
    (faulty.L.g_makespan > clean.L.g_makespan)

let test_sticky_corrupt_msg_raises () =
  (* a sticky corruption re-damages every retransmit: the ladder
     exhausts and must surface a structured notice, never a silently
     wrong gradient *)
  let module L = Apps_lulesh.Lulesh in
  let plan =
    Faults.plan_of_spec ~nranks:4 "none:retries=2,corrupt-msg=1@9@sticky"
  in
  match L.gradient ~nranks:4 ~faults:plan L.Mpi tiny_lulesh with
  | _ -> Alcotest.fail "sticky corruption not raised"
  | exception Mpi_state.Corrupt_message c ->
    Alcotest.(check bool) "attempts exhausted" true (c.Mpi_state.cm_attempts >= 2);
    check_contains "notice"
      (Format.asprintf "%a" Mpi_state.pp_corruption c)
      "corrupt"

let test_flip_detected_unsupervised () =
  (* an unsupervised run with a live bit flip must end in a structured
     Corrupt_region — the end-of-run ABFT sweep guarantees no flip
     leaves the run as a silently wrong value *)
  let module L = Apps_lulesh.Lulesh in
  let plan = Faults.plan_of_spec ~nranks:2 "none:flip=1@3@31@50" in
  match L.gradient ~nranks:2 ~faults:plan L.Mpi tiny_lulesh with
  | _ -> Alcotest.fail "flip not detected"
  | exception Checkpoint.Corrupt_region { cr_rank; _ } ->
    Alcotest.(check int) "victim rank named" 1 cr_rank

let test_flip_supervised_recovery_bitwise () =
  (* under supervision the same flip degrades to the nearest verified
     snapshot and re-advances: the recovered gradient is bitwise
     identical to the faultless one *)
  let module L = Apps_lulesh.Lulesh in
  let clean = L.gradient ~nranks:2 L.Mpi tiny_lulesh in
  let plan = Faults.plan_of_spec ~nranks:2 "none:flip=1@3@31@50" in
  let faulty, recov =
    L.gradient_recoverable ~nranks:2 ~faults:plan ~max_restarts:3 L.Mpi
      tiny_lulesh
  in
  check_bitwise_coords "flip recovery" clean.L.d_coords faulty.L.d_coords;
  let s = faulty.L.g_stats in
  Alcotest.(check int) "flip injected" 1 s.Stats.sdc_injected;
  Alcotest.(check int) "flip detected" 1 s.Stats.sdc_detected;
  Alcotest.(check int) "flip recovered" 1 s.Stats.sdc_recovered;
  Alcotest.(check bool) "restarted at least once" true (s.Stats.restarts >= 1);
  Alcotest.(check bool)
    "resumed from a snapshot" true
    (List.length recov.Exec.r_resumed_from >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "recovery charged to virtual time (%.0f -> %.0f)"
       clean.L.g_makespan faulty.L.g_makespan)
    true
    (faulty.L.g_makespan > clean.L.g_makespan)

let () =
  Alcotest.run "faults"
    [
      ( "diagnosis",
        [
          Alcotest.test_case "recv tag mismatch" `Quick test_tag_mismatch;
          Alcotest.test_case "rank absent from collective" `Quick
            test_collective_missing_rank;
          Alcotest.test_case "unwaited isend" `Quick test_unwaited_isend;
        ] );
      ( "plans",
        [
          Alcotest.test_case "drop-retry transparent" `Quick
            test_drop_retry_transparent;
          Alcotest.test_case "seeded diagnosis deterministic" `Quick
            test_seeded_drop_diagnosis_deterministic;
          Alcotest.test_case "flaky deterministic" `Quick
            test_flaky_deterministic_values;
          Alcotest.test_case "kill names victim" `Quick test_kill_names_victim;
          Alcotest.test_case "recv from dead rank immediate" `Quick
            test_recv_from_dead_immediate;
          Alcotest.test_case "plan spec overrides" `Quick
            test_plan_spec_overrides;
          Alcotest.test_case "plan spec rejects bad input" `Quick
            test_plan_spec_rejects;
          Alcotest.test_case "duplicate flagged" `Quick
            test_duplicate_flagged_by_audit;
        ] );
      ( "gradients",
        [
          Alcotest.test_case "fd check under drop-retry" `Quick
            test_gradient_under_drop_retry;
          Alcotest.test_case "adjoints bitwise stable" `Quick
            test_gradient_drop_retry_bitwise;
          Alcotest.test_case "plans transparent to coalesced batches"
            `Quick test_gradient_coalesced_plans_transparent;
        ] );
      ( "sdc",
        [
          Alcotest.test_case "flip/corrupt spec round-trip" `Quick
            test_plan_spec_sdc_roundtrip;
          Alcotest.test_case "sdc spec rejects bad input" `Quick
            test_plan_spec_sdc_rejects;
          Alcotest.test_case "corrupt-msg retransmit bitwise" `Quick
            test_corrupt_msg_retransmit_bitwise;
          Alcotest.test_case "sticky corruption raises" `Quick
            test_sticky_corrupt_msg_raises;
          Alcotest.test_case "flip detected unsupervised" `Quick
            test_flip_detected_unsupervised;
          Alcotest.test_case "flip recovery bitwise" `Quick
            test_flip_supervised_recovery_bitwise;
        ] );
    ]
