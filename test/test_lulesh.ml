(* LULESH proxy: cross-variant agreement (serial vs threaded vs
   distributed vs Julia), gradient correctness against finite
   differences, and the scaling shapes the paper reports. *)

module L = Apps_lulesh.Lulesh

let feq eps = Alcotest.float eps

let tiny = { L.nx = 2; ny = 2; nz = 4; niter = 3; dt0 = 0.01; escale = 1.0 }

let test_variants_agree () =
  let base = (L.run L.Seq tiny).L.total_energy in
  let check name v =
    Alcotest.check (feq 1e-9) name base v
  in
  check "omp" (L.run ~nthreads:4 L.Omp tiny).L.total_energy;
  check "raja" (L.run ~nthreads:4 L.Raja_ tiny).L.total_energy;
  check "mpi 1 rank" (L.run L.Mpi tiny).L.total_energy;
  check "mpi 2 ranks" (L.run ~nranks:2 L.Mpi tiny).L.total_energy;
  check "mpi 4 ranks" (L.run ~nranks:4 L.Mpi tiny).L.total_energy;
  check "hybrid 2x2" (L.run ~nranks:2 ~nthreads:2 L.Hybrid tiny).L.total_energy;
  check "julia 2 ranks" (L.run ~nranks:2 L.Jlmpi tiny).L.total_energy

let test_energy_evolves () =
  (* the shock actually moves material: energy changes over iterations *)
  let e1 = (L.run L.Seq { tiny with L.niter = 1 }).L.total_energy in
  let e5 = (L.run L.Seq { tiny with L.niter = 5 }).L.total_energy in
  Alcotest.(check bool) "dynamics happen" true (Float.abs (e1 -. e5) > 1e-9)

let test_gradient_matches_across_variants () =
  let gs = L.gradient L.Seq tiny in
  let check name (g : L.grad_result) =
    (* single-rank variants share mesh layout: compare directly *)
    Array.iteri
      (fun i x ->
        let y = g.L.d_coords.(0).(i) in
        let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
        Alcotest.check (feq 1e-7)
          (Printf.sprintf "%s d_x[%d]" name i)
          0.0
          ((x -. y) /. scale))
      gs.L.d_coords.(0)
  in
  check "omp" (L.gradient ~nthreads:4 L.Omp tiny);
  check "raja" (L.gradient ~nthreads:3 L.Raja_ tiny);
  check "mpi1" (L.gradient L.Mpi tiny);
  check "jl1" (L.gradient L.Jlmpi tiny)

let test_gradient_mpi_matches_seq () =
  (* 2-rank MPI gradient must equal the seq gradient on the same global
     mesh: rank slabs concatenate (shared plane rows both carry the halo
     contribution summed by the adjoint exchange) *)
  let gs = L.gradient L.Seq tiny in
  let gm = L.gradient ~nranks:2 L.Mpi tiny in
  (* rank 0's slab covers global nodes [0, nn0); its interior (below the
     shared plane) must match seq exactly *)
  let nnx = tiny.L.nx + 1 and nny = tiny.L.ny + 1 in
  let np = nnx * nny in
  let nzl = tiny.L.nz / 2 in
  let interior0 = np * nzl in
  for i = 0 to interior0 - 1 do
    let a = gs.L.d_coords.(0).(i) and b = gm.L.d_coords.(0).(i) in
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Alcotest.check (feq 1e-7)
      (Printf.sprintf "interior d_x[%d]" i)
      0.0
      ((a -. b) /. scale)
  done;
  (* the shared plane: seq adjoint = rank0's + rank1's copies summed *)
  for i = 0 to np - 1 do
    let a = gs.L.d_coords.(0).(interior0 + i) in
    let b =
      gm.L.d_coords.(0).(interior0 + i) +. gm.L.d_coords.(1).(i)
    in
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Alcotest.check (feq 1e-7)
      (Printf.sprintf "shared plane d_x[%d]" i)
      0.0
      ((a -. b) /. scale)
  done

let test_gradient_fd_seq () =
  (* directional finite difference: scale all initial element energies by
     (1+h); d loss/dh at 0 must equal sum_k e_k * dL/de_k *)
  let g = L.gradient L.Seq tiny in
  let m = L.mesh tiny ~nranks:1 ~rank:0 in
  let directional =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun k ek -> ek *. g.L.d_energy.(0).(k)) m.L.energy)
  in
  let h = 1e-6 in
  let loss s = (L.run L.Seq { tiny with L.escale = s }).L.total_energy in
  let fd = (loss (1.0 +. h) -. loss (1.0 -. h)) /. (2.0 *. h) in
  let scale = Float.max 1.0 (Float.max (Float.abs fd) (Float.abs directional)) in
  Alcotest.check (feq 1e-5) "directional fd"
    0.0 ((fd -. directional) /. scale)

let test_scaling_mpi () =
  let inp = { L.nx = 6; ny = 6; nz = 16; niter = 2; dt0 = 0.01; escale = 1.0 } in
  let t n = (L.run ~nranks:n L.Mpi inp).L.makespan in
  let t1 = t 1 and t4 = t 4 in
  Alcotest.(check bool)
    (Printf.sprintf "mpi speedup %.2f" (t1 /. t4))
    true
    (t4 < t1 /. 1.8)

let test_scaling_gradient_mpi () =
  let inp = { L.nx = 6; ny = 6; nz = 16; niter = 2; dt0 = 0.01; escale = 1.0 } in
  let t n = (L.gradient ~nranks:n L.Mpi inp).L.g_makespan in
  let t1 = t 1 and t4 = t 4 in
  Alcotest.(check bool)
    (Printf.sprintf "gradient mpi speedup %.2f" (t1 /. t4))
    true
    (t4 < t1 /. 1.8)

let test_gradient_coalesce_bit_identical () =
  (* Coalesced adjoint exchanges accumulate each chunk at exactly the
     program point where the one-blocking-dual-per-exchange baseline
     would have accumulated it (orphan chunks are parked until their
     expectation registers), so the gradients must be bit-identical to
     the --no-coalesce ablation — not merely close. *)
  let nc = { Parad_core.Plan.default_options with coalesce_comm = false } in
  let g_on = L.gradient ~nranks:4 L.Mpi tiny in
  let g_off = L.gradient ~nranks:4 ~opts:nc L.Mpi tiny in
  let bits name per_rank_on per_rank_off =
    Array.iteri
      (fun r (on : float array) ->
        Array.iteri
          (fun i x ->
            Alcotest.(check int64)
              (Printf.sprintf "rank %d %s[%d]" r name i)
              (Int64.bits_of_float per_rank_off.(r).(i))
              (Int64.bits_of_float x))
          on)
      per_rank_on
  in
  bits "d_x" g_on.L.d_coords g_off.L.d_coords;
  bits "d_e" g_on.L.d_energy g_off.L.d_energy

let test_gradient_coalesced_audit_clean () =
  (* the communication audit must match every packed adjoint message
     back to its originating exchanges: no residual staged chunks,
     unfulfilled expectations, or orphans after a coalesced sweep *)
  let mpi_ref = ref None in
  ignore (L.gradient ~nranks:4 ~mpi_ref L.Mpi tiny);
  match Parad_verify.Comm_check.audit (Option.get !mpi_ref) with
  | [] -> ()
  | issues ->
    Alcotest.failf "coalesced gradient audit: %s"
      (Parad_verify.Comm_check.report issues)

let test_scaling_omp () =
  let inp = { L.nx = 6; ny = 6; nz = 16; niter = 2; dt0 = 0.01; escale = 1.0 } in
  let t w = (L.run ~nthreads:w L.Omp inp).L.makespan in
  let t1 = t 1 and t8 = t 8 in
  Alcotest.(check bool)
    (Printf.sprintf "omp speedup %.2f" (t1 /. t8))
    true
    (t8 < t1 /. 3.0)

let () =
  Alcotest.run "lulesh"
    [
      ( "primal",
        [
          Alcotest.test_case "variants agree" `Quick test_variants_agree;
          Alcotest.test_case "dynamics evolve" `Quick test_energy_evolves;
          Alcotest.test_case "mpi scales" `Quick test_scaling_mpi;
          Alcotest.test_case "omp scales" `Quick test_scaling_omp;
        ] );
      ( "gradient",
        [
          Alcotest.test_case "variants agree" `Quick
            test_gradient_matches_across_variants;
          Alcotest.test_case "mpi matches seq" `Quick
            test_gradient_mpi_matches_seq;
          Alcotest.test_case "directional derivative" `Quick
            test_gradient_fd_seq;
          Alcotest.test_case "gradient scales" `Quick
            test_scaling_gradient_mpi;
          Alcotest.test_case "coalesce bit-identical" `Quick
            test_gradient_coalesce_bit_identical;
          Alcotest.test_case "coalesced audit clean" `Quick
            test_gradient_coalesced_audit_clean;
        ] );
    ]
