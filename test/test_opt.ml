(* Optimizer: targeted transformations plus property tests (random
   programs keep their semantics; gradients survive optimization). *)

open Parad_ir
open Parad_runtime
module B = Builder
module GC = Parad_verify.Grad_check
module Pipe = Parad_opt.Pipeline

let feq = Alcotest.float 1e-9

let count_instrs (f : Func.t) = Instr.fold_instrs (fun n _ -> n + 1) 0 f.body

let count_kind pred (f : Func.t) =
  Instr.fold_instrs (fun n i -> if pred i then n + 1 else n) 0 f.body

let is_load = function Instr.Load _ -> true | _ -> false
let is_fork = function Instr.Fork _ -> true | _ -> false

(* ---- targeted ---- *)

let test_constfold () =
  let prog = Prog.create () in
  let b, ps = B.func prog "cf" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  let a = B.add b (B.i64 b 2) (B.i64 b 3) in
  let y = B.mul b x (B.f64 b 1.0) in
  let z = B.add b y (B.f64 b 0.0) in
  ignore a;
  B.return b (Some z);
  ignore (B.finish b);
  let opt = Pipe.run_on prog "cf" [ Pipe.fold; Pipe.dce ] in
  let f = Prog.find_exn opt "cf" in
  (* x*1 and z+0 fold away; only the return remains *)
  Alcotest.(check bool)
    "shrunk" true
    (count_instrs f < count_instrs (Prog.find_exn prog "cf"));
  let res = Exec.run opt ~fname:"cf" ~setup:(fun _ -> [ Value.VFloat 4.0 ]) in
  Alcotest.check feq "value preserved" 4.0 (Value.to_float res.Exec.values.(0))

let test_cse_and_dce () =
  let prog = Prog.create () in
  let b, ps = B.func prog "ce" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  let a = B.mul b x x in
  let c = B.mul b x x in
  let dead = B.sin_ b x in
  ignore dead;
  B.return b (Some (B.add b a c));
  ignore (B.finish b);
  let opt = Pipe.run_on prog "ce" [ Pipe.cse; Pipe.dce ] in
  let f = Prog.find_exn opt "ce" in
  Alcotest.(check int) "one mul, one add, return" 3 (count_instrs f);
  let res = Exec.run opt ~fname:"ce" ~setup:(fun _ -> [ Value.VFloat 3.0 ]) in
  Alcotest.check feq "value" 18.0 (Value.to_float res.Exec.values.(0))

let test_licm_hoists () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "lc"
      ~params:[ "x", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, out, n = match ps with [ a; b; c ] -> a, b, c | _ -> assert false in
  B.for_n b n (fun i ->
      (* x[0] is loop-invariant and the body stores only to out — but a
         store clobbers, so only the pure part hoists; use a pure
         invariant computation instead *)
      let inv = B.mul b (B.to_float b n) (B.to_float b n) in
      let v = B.mul b inv (B.load b x i) in
      B.store b out i v);
  B.return b None;
  ignore (B.finish b);
  let before = Prog.find_exn prog "lc" in
  let opt = Pipe.run_on prog "lc" [ Pipe.licm; Pipe.dce ] in
  let f = Prog.find_exn opt "lc" in
  let in_loop_before =
    count_kind (fun i -> match i with Instr.Un _ | Instr.Bin _ -> true | _ -> false) before
  in
  ignore in_loop_before;
  (* the loop body should have shrunk: inv moved out *)
  let body_of g =
    Instr.fold_instrs
      (fun acc i -> match i with Instr.For { body; _ } -> List.length body.Instr.body | _ -> acc)
      0 g.Func.body
  in
  Alcotest.(check bool) "body shrank" true (body_of f < body_of before);
  (* semantics preserved *)
  let run p =
    let out = ref Value.VUnit in
    ignore
      (Exec.run p ~fname:"lc" ~setup:(fun ctx ->
           let o = Exec.zeros ctx 4 in
           out := o;
           [ Exec.floats ctx [| 1.0; 2.0; 3.0; 4.0 |]; o; Value.VInt 4 ]));
    Exec.to_floats !out
  in
  Array.iter2
    (fun a b' -> Alcotest.check feq "same" a b')
    (run prog) (run opt)

let test_parallel_load_hoisting () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "ph"
      ~attrs:[ Func.noalias_readonly; Func.noalias; Func.default_attr ]
      ~params:
        [ "coef", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let coef, out, n =
    match ps with [ a; b; c ] -> a, b, c | _ -> assert false
  in
  (* the paper's pattern: a pointer-indirection load inside the parallel
     loop that OpenMPOpt hoists out *)
  let zero = B.i64 b 0 in
  B.fork b (fun ~tid:_ ~nth:_ ->
      B.workshare b ~lo:(B.i64 b 0) ~hi:n (fun i ->
          let c0 = B.load b coef zero in
          B.store b out i (B.mul b c0 (B.to_float b i))));
  B.return b None;
  ignore (B.finish b);
  (* hmm: the workshare body STOREs to out, so the fork body clobbers; the
     hoist must still fire because the loaded pointer is readonly-noalias?
     Our conservative pass requires a store-free region, so restructure:
     check that hoisting fires on a store-free region. *)
  ignore prog;
  let prog2 = Prog.create () in
  let b, ps =
    B.func prog2 "ph2"
      ~params:[ "coef", Ty.Ptr Ty.Float; "acc", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let coef, n =
    match ps with [ a; _; c ] -> a, c | _ -> assert false
  in
  let zero = B.i64 b 0 in
  B.fork b (fun ~tid:_ ~nth:_ ->
      B.workshare b ~lo:(B.i64 b 0) ~hi:n (fun i ->
          let c0 = B.load b coef zero in
          let v = B.mul b c0 (B.to_float b i) in
          ignore v))
  ;
  B.return b None;
  ignore (B.finish b);
  let before = Prog.find_exn prog2 "ph2" in
  let opt = Pipe.run_on prog2 "ph2" [ Pipe.openmp_opt () ] in
  let f = Prog.find_exn opt "ph2" in
  let loads_in_fork g =
    Instr.fold_instrs
      (fun acc i ->
        match i with
        | Instr.Fork { body; _ } ->
          Instr.fold_instrs
            (fun a j -> if is_load j then a + 1 else a)
            0 body.Instr.body
        | _ -> acc)
      0 g.Func.body
  in
  Alcotest.(check bool) "load was inside" true (loads_in_fork before > 0);
  Alcotest.(check int) "load hoisted out" 0 (loads_in_fork f)

let test_fork_fusion () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "ff" ~params:[ "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let out, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let nth = B.i64 b 4 in
  B.fork b ~nth (fun ~tid:_ ~nth:_ ->
      B.workshare b ~lo:(B.i64 b 0) ~hi:n (fun i ->
          B.store b out i (B.to_float b i)));
  B.fork b ~nth (fun ~tid:_ ~nth:_ ->
      B.workshare b ~lo:(B.i64 b 0) ~hi:n (fun i ->
          let v = B.load b out i in
          B.store b out i (B.mul b v (B.f64 b 2.0))));
  B.return b None;
  ignore (B.finish b);
  let opt = Pipe.run_on prog "ff" [ Pipe.openmp_opt () ] in
  let f = Prog.find_exn opt "ff" in
  Alcotest.(check int) "one fork" 1 (count_kind is_fork f);
  let run p =
    let out = ref Value.VUnit in
    ignore
      (Exec.run
         ~cfg:{ Interp.default_config with nthreads = 4 }
         p ~fname:"ff"
         ~setup:(fun ctx ->
           let o = Exec.zeros ctx 6 in
           out := o;
           [ o; Value.VInt 6 ]));
    Exec.to_floats !out
  in
  Array.iter2
    (fun a b' -> Alcotest.check feq "fused same" a b')
    (run prog) (run opt)

let test_inline () =
  let prog = Prog.create () in
  let b, ps = B.func prog "sq" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  B.return b (Some (B.mul b x x));
  ignore (B.finish b);
  let b, ps = B.func prog "top" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  let a = B.call b ~ret:Ty.Float "sq" [ x ] in
  let c = B.call b ~ret:Ty.Float "sq" [ a ] in
  B.return b (Some c);
  ignore (B.finish b);
  let opt = Pipe.run_on prog "top" [ Pipe.inline () ] in
  let f = Prog.find_exn opt "top" in
  Alcotest.(check int) "no calls left" 0
    (count_kind (function Instr.Call _ -> true | _ -> false) f);
  let res =
    Exec.run opt ~fname:"top" ~setup:(fun _ -> [ Value.VFloat 2.0 ])
  in
  Alcotest.check feq "x^4" 16.0 (Value.to_float res.Exec.values.(0))

(* ---- property tests: random programs keep semantics under O2 ---- *)

(* A tiny generator of well-formed float kernels over (x : f64*, n=8). *)
type gop = GAdd | GMul | GSin | GMin | GLoad of int | GConstF of float

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (frequency
         [
           3, return GAdd;
           3, return GMul;
           1, return GSin;
           1, return GMin;
           3, map (fun i -> GLoad (abs i mod 8)) int;
           2, map (fun f -> GConstF (Float.of_int (f mod 7) /. 3.0)) int;
         ]))

let build_random_prog ops =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "rand" ~params:[ "x", Ty.Ptr Ty.Float ] ~ret:Ty.Float
  in
  let x = List.hd ps in
  let stack = ref [ B.f64 b 0.5 ] in
  let push v = stack := v :: !stack in
  let pop2 () =
    match !stack with
    | a :: b' :: rest ->
      stack := rest;
      a, b'
    | [ a ] -> a, a
    | [] -> assert false
  in
  List.iter
    (fun op ->
      match op with
      | GAdd ->
        let a, c = pop2 () in
        push (B.add b a c)
      | GMul ->
        let a, c = pop2 () in
        push (B.mul b a c)
      | GSin ->
        let a = List.hd !stack in
        push (B.sin_ b a)
      | GMin ->
        let a, c = pop2 () in
        push (B.min_ b a c)
      | GLoad i -> push (B.load b x (B.i64 b i))
      | GConstF f -> push (B.f64 b f))
    ops;
  (* sum everything on the stack into the result *)
  let r = List.fold_left (fun acc v -> B.add b acc v) (B.f64 b 0.0) !stack in
  B.return b (Some r);
  ignore (B.finish b);
  prog

let input = [| 0.3; -1.2; 2.0; 0.7; -0.1; 1.5; 0.9; -0.4 |]

let eval prog =
  let res =
    Exec.run prog ~fname:"rand" ~setup:(fun ctx -> [ Exec.floats ctx input ])
  in
  Value.to_float res.Exec.values.(0)

let prop_o2_preserves_semantics =
  QCheck.Test.make ~name:"o2 preserves semantics" ~count:100
    (QCheck.make gen_ops) (fun ops ->
      let prog = build_random_prog ops in
      let opt = Pipe.run_on prog "rand" Pipe.o2 in
      let a = eval prog and b = eval opt in
      Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a))

let prop_gradient_survives_o2 =
  QCheck.Test.make ~name:"gradient after o2 == gradient before" ~count:40
    (QCheck.make gen_ops) (fun ops ->
      let prog = build_random_prog ops in
      let opt = Pipe.run_on prog "rand" Pipe.o2 in
      let g p =
        (GC.reverse p "rand" [ GC.ABuf input ] ~seeds:[ Array.make 8 0.0 ])
          .GC.d_bufs |> List.hd
      in
      let ga = g prog and gb = g opt in
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-8 *. Float.max 1.0 (Float.abs a))
        ga gb)

(* ---- pipeline idempotence + verifier cleanliness over the bundled
   applications: o2 on every primal, post_ad on every generated
   gradient, old passes and new (mem_forward v2, openmp_opt) alike.
   Running a pipeline twice must be a no-op, and every intermediate
   function must verify (run_on checks after each pass). ---- *)

module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude

let app_functions () =
  let lulesh =
    List.map
      (fun fl -> L.flavor_name fl, L.program fl)
      [ L.Seq; L.Omp; L.Raja_; L.Mpi; L.Hybrid; L.Jlmpi ]
  in
  let bude = MB.program () in
  lulesh
  @ [ "bude_seq", bude; "bude_omp", bude; "bude_julia", bude;
      "bude_chunk_jl", bude ]

let func_str p name = Printer.func_to_string (Prog.find_exn p name)

let test_o2_idempotent () =
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun (tag, passes) ->
          let once = Pipe.run_on prog name passes in
          Verifier.check_func (Prog.find_exn once name);
          let twice = Pipe.run_on once name passes in
          Alcotest.(check string)
            (Printf.sprintf "%s %s idempotent" name tag)
            (func_str once name) (func_str twice name))
        [ "o2", Pipe.o2; "o2_openmp", Pipe.o2_openmp ])
    (app_functions ())

let test_post_ad_idempotent () =
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun (tag, passes) ->
          let dprog, dname = Parad_core.Reverse.gradient prog name in
          let once = Pipe.run dprog passes in
          List.iter Verifier.check_func (Prog.functions once);
          let twice = Pipe.run once passes in
          Alcotest.(check string)
            (Printf.sprintf "%s %s idempotent" dname tag)
            (func_str once dname) (func_str twice dname))
        [ "post_ad", Pipe.post_ad; "post_ad_fuse", Pipe.post_ad_fuse ])
    (app_functions ())

(* ---- the post-AD pipeline must not perturb a single bit of the
   gradient: optimized and unoptimized reverse passes accumulate the
   same values in the same order ---- *)

let bits_equal name (a : float array) (b : float array) =
  Alcotest.(check int)
    (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      Alcotest.(check int64) (Printf.sprintf "%s[%d]" name i)
        (Int64.bits_of_float x)
        (Int64.bits_of_float b.(i)))
    a

let test_lulesh_grad_bit_identical () =
  let inp = { L.nx = 3; ny = 3; nz = 8; niter = 2; dt0 = 0.01; escale = 1.0 } in
  let g_opt = L.gradient ~nthreads:8 L.Omp inp in
  let g_raw = L.gradient ~nthreads:8 ~post_opt:false L.Omp inp in
  Array.iteri
    (fun a xs -> bits_equal (Printf.sprintf "d_coords.%d" a) xs g_raw.L.d_coords.(a))
    g_opt.L.d_coords;
  Array.iteri
    (fun r xs -> bits_equal (Printf.sprintf "d_energy.%d" r) xs g_raw.L.d_energy.(r))
    g_opt.L.d_energy

let test_bude_grad_bit_identical () =
  let deck = MB.deck ~nposes:16 ~natlig:6 ~natpro:8 in
  let g_opt = MB.gradient ~nthreads:8 MB.Omp deck in
  let g_raw = MB.gradient ~nthreads:8 ~post_opt:false MB.Omp deck in
  bits_equal "d_lig" g_opt.MB.d_lig g_raw.MB.d_lig;
  bits_equal "d_pro" g_opt.MB.d_pro g_raw.MB.d_pro;
  bits_equal "d_poses" g_opt.MB.d_poses g_raw.MB.d_poses

let () =
  Alcotest.run "opt"
    [
      ( "targeted",
        [
          Alcotest.test_case "constfold" `Quick test_constfold;
          Alcotest.test_case "cse+dce" `Quick test_cse_and_dce;
          Alcotest.test_case "licm" `Quick test_licm_hoists;
          Alcotest.test_case "parallel load hoisting" `Quick
            test_parallel_load_hoisting;
          Alcotest.test_case "fork fusion" `Quick test_fork_fusion;
          Alcotest.test_case "inline" `Quick test_inline;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "o2 idempotent on apps" `Quick test_o2_idempotent;
          Alcotest.test_case "post_ad idempotent on app gradients" `Quick
            test_post_ad_idempotent;
          Alcotest.test_case "lulesh gradient bit-identical under post_ad"
            `Quick test_lulesh_grad_bit_identical;
          Alcotest.test_case "bude gradient bit-identical under post_ad"
            `Quick test_bude_grad_bit_identical;
        ] );
      ( "props",
        [
          QCheck_alcotest.to_alcotest prop_o2_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_gradient_survives_o2;
        ] );
    ]
