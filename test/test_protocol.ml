(* The exit-code / response-class taxonomy is a protocol: [parad]'s
   process exit codes, the service's JSON [code] field and the chaos
   tools' classifiers must all agree on one table. This test pins that
   table — a new class must claim a fresh code, never reuse one. *)

module Service = Parad_server.Service

(* every documented class, in exit-code order; keep in sync with the
   README table and the [guarded] dispatcher in bin/parad.ml *)
let documented =
  [
    "ok", 0;
    "findings", 1;
    "invalid", 2;
    "runtime_error", 2;
    "san_strict", 2;
    "error", 2;
    "deadlock", 3;
    "rank_failed", 3;
    "degraded", 4;
    "miscompile", 5;
    "deadline", 6;
    "overloaded", 7;
    "breaker_open", 8;
    "corrupted", 9;
  ]

let test_codes_match_table () =
  List.iter
    (fun (cls, code) ->
      Alcotest.(check int)
        (Printf.sprintf "class %S" cls)
        code (Service.class_code cls))
    documented

let test_codes_cover_range () =
  (* the distinct codes are exactly 0..9: no gaps (an undocumented exit
     would be unclassifiable) and no code above the documented ceiling
     (slam accepts codes 0-9 only) *)
  let codes =
    List.sort_uniq compare (List.map (fun (_, c) -> c) documented)
  in
  Alcotest.(check (list int)) "codes are exactly 0..9"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    codes

let test_distinct_failure_kinds_distinct_codes () =
  (* one code per failure kind: classes that mean different things to a
     caller must not collapse onto the same exit code *)
  let kinds =
    [
      "ok"; "findings"; "invalid"; "deadlock"; "degraded"; "miscompile";
      "deadline"; "overloaded"; "breaker_open"; "corrupted";
    ]
  in
  let codes = List.map Service.class_code kinds in
  Alcotest.(check int)
    "ten kinds, ten codes" 10
    (List.length (List.sort_uniq compare codes))

let test_unknown_class_rejected () =
  match Service.class_code "segfault" with
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "names the class" true
      (let n = String.length msg in
       let rec go i =
         i + 8 <= n && (String.sub msg i 8 = "segfault" || go (i + 1))
       in
       go 0)
  | c -> Alcotest.failf "unknown class mapped to %d" c

let () =
  Alcotest.run "protocol"
    [
      ( "exit codes",
        [
          Alcotest.test_case "classes match documented table" `Quick
            test_codes_match_table;
          Alcotest.test_case "codes cover 0..9 exactly" `Quick
            test_codes_cover_range;
          Alcotest.test_case "failure kinds get distinct codes" `Quick
            test_distinct_failure_kinds_distinct_codes;
          Alcotest.test_case "unknown class rejected" `Quick
            test_unknown_class_rejected;
        ] );
    ]
