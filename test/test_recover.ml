(* Checkpoint/restart: snapshot determinism, validity rejection, and
   kill-and-recover gradients that are bit-identical to faultless runs. *)

open Parad_ir
open Parad_runtime
module B = Builder
module L = Apps_lulesh.Lulesh
module GC = Parad_verify.Grad_check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains what s sub =
  Alcotest.(check bool)
    (Printf.sprintf "%s mentions %S (got: %s)" what sub s)
    true (contains s sub)

let bits = Int64.bits_of_float

let check_bitwise what a b =
  Alcotest.(check int64) what (bits a) (bits b)

(* the CLI's small LULESH problem: size 2, 3 timesteps *)
let inp ~ranks =
  {
    L.nx = 2;
    ny = 2;
    nz = ((2 * ranks) + ranks - 1) / ranks * ranks;
    niter = 3;
    dt0 = 0.01;
    escale = 1.0;
  }

let kill_spec ?at ~nranks victim =
  let at = match at with Some t -> Printf.sprintf ",at=%g" t | None -> "" in
  Faults.plan_of_spec ~nranks (Printf.sprintf "kill:victim=%d%s" victim at)

(* ---- snapshot determinism ---- *)

let test_snapshots_byte_identical () =
  (* two identical runs must leave byte-identical snapshots in their
     stores: buffers serialize in id order, floats as bit patterns, and
     the scheduler is virtual-time deterministic *)
  let nranks = 4 in
  let go () =
    let _, recov = L.run_recoverable ~nranks L.Mpi (inp ~ranks:nranks) in
    recov.Exec.r_store
  in
  let s1 = go () and s2 = go () in
  let seen = ref 0 in
  for rank = 0 to nranks - 1 do
    for id = 0 to 2 do
      match
        ( Checkpoint.snapshot_bytes s1 ~rank ~id,
          Checkpoint.snapshot_bytes s2 ~rank ~id )
      with
      | Some a, Some b ->
        incr seen;
        Alcotest.(check string)
          (Printf.sprintf "snapshot rank %d id %d byte-identical" rank id)
          a b
      | None, None -> ()
      | _ ->
        Alcotest.failf "snapshot rank %d id %d present in only one run" rank
          id
    done
  done;
  Alcotest.(check int) "every (rank, id) snapshot present" 12 !seen

(* ---- validity: in-flight communication is rejected ---- *)

let test_unwaited_isend_rejected () =
  (* a checkpoint taken between an isend and its wait must fail with a
     clear error instead of silently dropping the in-flight message *)
  let prog = Prog.create () in
  let b, ps =
    B.func prog "uwck" ~params:[ "x", Ty.Ptr Ty.Float ] ~ret:Ty.Unit
  in
  let x = match ps with [ a ] -> a | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let next = B.rem b (B.add b rank (B.i64 b 1)) size in
  let prev = B.rem b (B.add b rank (B.sub b size (B.i64 b 1))) size in
  let n = B.i64 b 1 and tag = B.i64 b 3 in
  let y = B.alloc b Ty.Float n in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "parad.checkpoint" [ B.i64 b 0; x ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  B.return b None;
  ignore (B.finish b);
  match
    Exec.run_spmd_recoverable prog ~nranks:2 ~fname:"uwck"
      ~setup:(fun ctx ~rank:_ -> [ Exec.floats ctx [| 1.0 |] ])
  with
  | _ -> Alcotest.fail "checkpoint with in-flight requests was accepted"
  | exception Value.Runtime_error msg ->
    check_contains "rejection" msg "unwaited request";
    check_contains "rejection" msg "parad.checkpoint 0"

(* ---- tiered snapshot store ---- *)

let test_first_last_iteration_snapshots () =
  (* the outer loop checkpoints every iteration: the store must hold a
     valid hot-tier snapshot at the first and last iteration for every
     rank (the boundary ids recovery and the binomial driver pivot on) *)
  let nranks = 4 in
  let _, recov = L.run_recoverable ~nranks L.Mpi (inp ~ranks:nranks) in
  let store = recov.Exec.r_store in
  for rank = 0 to nranks - 1 do
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (Printf.sprintf "rank %d id %d valid" rank id)
          true
          (Checkpoint.valid store ~rank ~id);
        Alcotest.(check bool)
          (Printf.sprintf "rank %d id %d hot" rank id)
          true
          (Checkpoint.snapshot_tier store ~rank ~id = Some Checkpoint.Hot))
      [ 0; (inp ~ranks:nranks).L.niter - 1 ]
  done

let test_tiered_eviction_and_integrity () =
  (* hot-ring budget enforcement: with 2 tiers evictions demote to disk
     (still restorable, different tier); with 1 tier they drop; a
     corrupted snapshot fails its checksum and disqualifies its id from
     latest_consistent *)
  let mk tiers =
    Checkpoint.create_store
      ~policy:{ Checkpoint.hot_budget = Some 2; tiers }
      ~nranks:1 ()
  in
  let fill store =
    for id = 0 to 3 do
      ignore
        (Checkpoint.put store ~rank:0 ~id ~cells:1
           (Printf.sprintf "snap-%d" id))
    done
  in
  let s2 = mk 2 in
  fill s2;
  Alcotest.(check bool)
    "demoted to disk" true
    (Checkpoint.snapshot_tier s2 ~rank:0 ~id:0 = Some Checkpoint.Disk);
  Alcotest.(check bool)
    "newest stays hot" true
    (Checkpoint.snapshot_tier s2 ~rank:0 ~id:3 = Some Checkpoint.Hot);
  Alcotest.(check bool)
    "disk snapshot still restorable" true
    (Checkpoint.snapshot_bytes s2 ~rank:0 ~id:0 = Some "snap-0");
  let s1 = mk 1 in
  fill s1;
  Alcotest.(check bool)
    "single tier drops evictions" true
    (Checkpoint.snapshot_tier s1 ~rank:0 ~id:0 = None);
  Alcotest.(check (option int))
    "latest_consistent picks newest valid" (Some 3)
    (Checkpoint.latest_consistent s2);
  Checkpoint.corrupt s2 ~rank:0 ~id:3;
  Alcotest.(check bool)
    "corruption detected" false
    (Checkpoint.valid s2 ~rank:0 ~id:3);
  Alcotest.(check (option int))
    "corrupt id skipped, degrades to older" (Some 2)
    (Checkpoint.latest_consistent s2);
  Checkpoint.release s2 ~id:2;
  Alcotest.(check (option int))
    "released id skipped too" (Some 1)
    (Checkpoint.latest_consistent s2)

let test_open_collective_rejected () =
  (* a checkpoint taken by a rank that joined a collective no other rank
     has completed must fail with a clear error: the in-flight collective
     is not part of a rank-local snapshot *)
  let cfg = Interp.default_config in
  let run () =
    Sim.run ~cost:cfg.Interp.cost ~stats:(Stats.create ()) (fun () ->
        let mpi =
          Mpi_state.create ~cost:cfg.Interp.cost ~nranks:2
            ~coalesce:cfg.Interp.coalesce ()
        in
        ignore
          (Mpi_state.coll_join mpi ~rank:0 ~kind:Mpi_state.Cbarrier ~count:0
             ~contrib:None);
        let store = Checkpoint.create_store ~nranks:2 () in
        let session = Checkpoint.session store ~rank:0 () in
        ignore
          (Checkpoint.take session ~mem:(Memory.create ~rank:0)
             ~cache:(Cache_rt.create ()) ~mpi:(Some mpi) ~roots:[] ~id:0))
  in
  match run () with
  | _ -> Alcotest.fail "checkpoint inside an open collective was accepted"
  | exception Value.Runtime_error msg ->
    check_contains "rejection" msg "open collective";
    check_contains "rejection" msg "parad.checkpoint 0"

(* ---- LULESH kill-and-recover ---- *)

let clean_gradient nranks = L.gradient ~nranks L.Mpi (inp ~ranks:nranks)

let check_gradient_matches ~what (clean : L.grad_result)
    (g : L.grad_result) nranks =
  check_bitwise (what ^ ": total") clean.L.g_total g.L.g_total;
  for r = 0 to nranks - 1 do
    Array.iteri
      (fun k c ->
        check_bitwise
          (Printf.sprintf "%s: rank %d d_energy[%d]" what r k)
          c g.L.d_energy.(r).(k))
      clean.L.d_energy.(r);
    Array.iteri
      (fun k c ->
        check_bitwise
          (Printf.sprintf "%s: rank %d d_coords[%d]" what r k)
          c g.L.d_coords.(r).(k))
      clean.L.d_coords.(r)
  done

let test_lulesh_warm_recovery_bitwise () =
  (* a rank killed mid-run is recovered from a globally-consistent
     checkpoint, and the gradient is bit-identical to the faultless
     run's; the lost work and restore are charged to virtual time *)
  let nranks = 4 in
  let clean = clean_gradient nranks in
  let g, recov =
    L.gradient_recoverable ~nranks
      ~faults:(kill_spec ~at:80000.0 ~nranks 2)
      L.Mpi (inp ~ranks:nranks)
  in
  Alcotest.(check int) "one restart" 1 recov.Exec.r_restarts;
  Alcotest.(check (list (option int)))
    "warm resume from checkpoint 1" [ Some 1 ] recov.Exec.r_resumed_from;
  Alcotest.(check bool)
    "snapshots actually restored" true
    (g.L.g_stats.Stats.checkpoints_restored > 0);
  Alcotest.(check bool)
    "restart cost charged to the makespan" true
    (g.L.g_makespan > clean.L.g_makespan);
  check_gradient_matches ~what:"warm" clean g nranks

let test_lulesh_warm_recovery_fd () =
  (* the recovered gradient also agrees with finite differences: the
     initial-energy direction of the adjoint matches d(total)/d(escale) *)
  let nranks = 4 in
  let g, _ =
    L.gradient_recoverable ~nranks
      ~faults:(kill_spec ~at:80000.0 ~nranks 2)
      L.Mpi (inp ~ranks:nranks)
  in
  let directional = ref 0.0 in
  for r = 0 to nranks - 1 do
    let m = L.mesh (inp ~ranks:nranks) ~nranks ~rank:r in
    Array.iteri
      (fun k ek -> directional := !directional +. (ek *. g.L.d_energy.(r).(k)))
      m.L.energy
  done;
  let h = 1e-6 in
  let loss s =
    (L.run ~nranks L.Mpi { (inp ~ranks:nranks) with L.escale = s })
      .L.total_energy
  in
  let fd = (loss (1.0 +. h) -. loss (1.0 -. h)) /. (2.0 *. h) in
  let rel =
    Float.abs (fd -. !directional) /. Float.max 1.0 (Float.abs fd)
  in
  if rel > 1e-5 then
    Alcotest.failf "recovered gradient vs FD: relative error %.3e" rel

let test_lulesh_cold_restart_bitwise () =
  (* a kill before any globally-consistent checkpoint exists falls back
     to a cold restart — and the gradient is still bit-identical *)
  let nranks = 4 in
  let clean = clean_gradient nranks in
  let g, recov =
    L.gradient_recoverable ~nranks
      ~faults:(kill_spec ~nranks 1)
      L.Mpi (inp ~ranks:nranks)
  in
  Alcotest.(check int) "one restart" 1 recov.Exec.r_restarts;
  Alcotest.(check (list (option int)))
    "cold restart" [ None ] recov.Exec.r_resumed_from;
  check_gradient_matches ~what:"cold" clean g nranks

let test_lulesh_multi_kill_bitwise () =
  (* a spec with two kills recovers twice and still reproduces the
     faultless gradient bit-for-bit *)
  let nranks = 4 in
  let clean = clean_gradient nranks in
  let plan =
    Faults.plan_of_spec ~nranks "kill:victim=1,at=60000,kill=3@150000"
  in
  let g, recov =
    L.gradient_recoverable ~nranks ~faults:plan L.Mpi (inp ~ranks:nranks)
  in
  Alcotest.(check int) "two restarts" 2 recov.Exec.r_restarts;
  Alcotest.(check int)
    "two structured failures" 2
    (List.length recov.Exec.r_failures);
  Alcotest.(check (list int))
    "victims in kill order" [ 1; 3 ]
    (List.map (fun n -> n.Mpi_state.fn_failed) recov.Exec.r_failures);
  check_gradient_matches ~what:"multi-kill" clean g nranks

let test_restart_budget_exhausted () =
  (* more kills than restarts re-raises the structured failure *)
  let nranks = 4 in
  let plan =
    Faults.plan_of_spec ~nranks "kill:victim=1,at=0,kill=2,kill=3"
  in
  match
    L.gradient_recoverable ~nranks ~max_restarts:1 ~faults:plan L.Mpi
      (inp ~ranks:nranks)
  with
  | _ -> Alcotest.fail "restart budget was not enforced"
  | exception Mpi_state.Rank_failed n ->
    Alcotest.(check int) "second kill surfaced" 2 n.Mpi_state.fn_failed

let test_restore_at_first_checkpoint () =
  (* a kill after every rank passed checkpoint 0 but before checkpoint 1
     is globally consistent restores from id 0 — the earliest warm
     resume — and the gradient is still bit-identical *)
  let nranks = 4 in
  let clean = clean_gradient nranks in
  let g, recov =
    L.gradient_recoverable ~nranks
      ~faults:(kill_spec ~at:40000.0 ~nranks 2)
      L.Mpi (inp ~ranks:nranks)
  in
  Alcotest.(check int) "one restart" 1 recov.Exec.r_restarts;
  Alcotest.(check (list (option int)))
    "resumed from checkpoint 0" [ Some 0 ] recov.Exec.r_resumed_from;
  check_gradient_matches ~what:"first-checkpoint" clean g nranks

(* ---- mid-reverse-sweep recovery via the reverse-entry checkpoint ---- *)

let test_mid_reverse_kill_bitwise () =
  (* with [ckpt_reverse] the gradient snapshots once more at reverse
     entry (id = niter, after the forward sweep's loop); a rank killed
     deep in the reverse sweep then resumes there — skipping the whole
     forward replay — and reproduces the faultless gradient bit-for-bit *)
  let nranks = 2 in
  let inp = inp ~ranks:nranks in
  let clean = L.gradient ~nranks L.Mpi inp in
  let opts =
    { Parad_core.Plan.default_options with Parad_core.Plan.ckpt_reverse = true }
  in
  (* the reverse sweep dominates the gradient makespan: 0.9x the clean
     gradient's end lands well inside it *)
  let at = 0.9 *. clean.L.g_makespan in
  let g, recov =
    L.gradient_recoverable ~nranks ~opts
      ~faults:(kill_spec ~at ~nranks 1)
      L.Mpi inp
  in
  Alcotest.(check int) "one restart" 1 recov.Exec.r_restarts;
  Alcotest.(check (list (option int)))
    "resumed from the reverse-entry checkpoint" [ Some inp.L.niter ]
    recov.Exec.r_resumed_from;
  check_gradient_matches ~what:"mid-reverse" clean g nranks

(* ---- binomial (revolve) schedules over the tiered store ---- *)

let test_binomial_bitwise_and_bounded () =
  (* a long-horizon gradient under a fixed snapshot budget: bit-identical
     to the store-all baseline while the AD cache peak stays that of a
     single timestep *)
  let nranks = 2 in
  let inp = { (inp ~ranks:nranks) with L.niter = 8 } in
  let clean = L.gradient ~nranks L.Mpi inp in
  let b = L.gradient_binomial ~nranks ~budget:2 L.Mpi inp in
  check_gradient_matches ~what:"binomial" clean b.L.b_grad nranks;
  Alcotest.(check bool)
    "multiple sweeps scheduled" true (b.L.b_sweeps >= 2);
  Alcotest.(check int) "one reverse segment per step" 8 b.L.b_segments;
  Alcotest.(check bool) "primal re-advances executed" true (b.L.b_advances > 0);
  Alcotest.(check int) "no degraded fetches" 0 b.L.b_degraded;
  let peak = b.L.b_grad.L.g_stats.Stats.cache_peak in
  let clean_peak = clean.L.g_stats.Stats.cache_peak in
  Alcotest.(check bool)
    (Printf.sprintf "cache peak bounded (%d < %d)" peak clean_peak)
    true
    (peak * 2 < clean_peak);
  Alcotest.(check bool)
    "snapshots accounted" true
    (b.L.b_grad.L.g_stats.Stats.snap_count > 0
    && b.L.b_grad.L.g_stats.Stats.snap_restores > 0)

let test_binomial_corruption_degrades () =
  (* a snapshot corrupted in the store fails its checksum at fetch time;
     the driver re-advances from an older valid checkpoint (counted as a
     degraded fetch) and the gradient is still bit-identical *)
  let nranks = 2 in
  let inp = { (inp ~ranks:nranks) with L.niter = 6 } in
  let clean = L.gradient ~nranks L.Mpi inp in
  let corrupted = ref false in
  let on_snapshot ~step ~store =
    if step = 3 && not !corrupted then begin
      corrupted := true;
      for rank = 0 to nranks - 1 do
        Checkpoint.corrupt store ~rank ~id:step
      done
    end
  in
  let b = L.gradient_binomial ~nranks ~budget:2 ~on_snapshot L.Mpi inp in
  Alcotest.(check bool) "fetches degraded" true (b.L.b_degraded > 0);
  check_gradient_matches ~what:"corrupted-binomial" clean b.L.b_grad nranks

(* ---- chaos soak ---- *)

let test_chaos_soak () =
  (* >= 50 seeded combinations of schedules, tiering, kills and
     corruption: every trial must be bit-identical or a classified clean
     abort — zero unclassified outcomes *)
  let report = Apps_lulesh.Chaos.soak ~trials:50 ~seed:42 () in
  Alcotest.(check int)
    "all trials ran" 50
    (List.length report.Apps_lulesh.Chaos.r_trials);
  Alcotest.(check int)
    "zero unclassified outcomes" 0 report.Apps_lulesh.Chaos.r_unclassified;
  Alcotest.(check bool)
    "most trials reproduce the gradient bit-for-bit" true
    (report.Apps_lulesh.Chaos.r_identical >= 40)

(* ---- the grad_check recovery harness on a small ring program ---- *)

let grad_ring_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "gring"
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let next = B.rem b (B.add b rank (B.i64 b 1)) size in
  let prev = B.rem b (B.add b rank (B.sub b size (B.i64 b 1))) size in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 9 in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  let x0 = B.load b x (B.i64 b 0) in
  let y0 = B.load b y (B.i64 b 0) in
  B.return b
    (Some (B.add b (B.mul b x0 (B.f64 b 2.0)) (B.mul b y0 (B.f64 b 3.0))));
  ignore (B.finish b);
  prog

let test_check_recovery_ring () =
  (* the verify-layer harness: kill-and-recover adjoints of a small ring
     program are bit-identical to the faultless ones (a program without
     checkpoint sites recovers via cold restart) *)
  let prog = grad_ring_prog () in
  let n = 2 in
  let args ~rank =
    [
      GC.ABuf (Array.init n (fun i -> 0.4 +. float_of_int (rank + i)));
      GC.AInt n;
    ]
  in
  let seeds ~rank:_ = [ Array.make n 0.0 ] in
  let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
  match
    GC.check_recovery prog "gring" ~nranks:3
      ~faults:(kill_spec ~nranks:3 1)
      ~args ~seeds ~d_ret
  with
  | Error m -> Alcotest.failf "check_recovery: %s" m
  | Ok (_, recovery) ->
    Alcotest.(check int) "one restart" 1 recovery.Exec.r_restarts

let () =
  Alcotest.run "recover"
    [
      ( "checkpoints",
        [
          Alcotest.test_case "snapshots byte-identical" `Quick
            test_snapshots_byte_identical;
          Alcotest.test_case "unwaited isend rejected" `Quick
            test_unwaited_isend_rejected;
          Alcotest.test_case "first/last iteration snapshots" `Quick
            test_first_last_iteration_snapshots;
          Alcotest.test_case "tiered eviction and integrity" `Quick
            test_tiered_eviction_and_integrity;
          Alcotest.test_case "open collective rejected" `Quick
            test_open_collective_rejected;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "lulesh warm recovery bitwise" `Quick
            test_lulesh_warm_recovery_bitwise;
          Alcotest.test_case "lulesh warm recovery vs FD" `Quick
            test_lulesh_warm_recovery_fd;
          Alcotest.test_case "lulesh cold restart bitwise" `Quick
            test_lulesh_cold_restart_bitwise;
          Alcotest.test_case "lulesh multi-kill bitwise" `Quick
            test_lulesh_multi_kill_bitwise;
          Alcotest.test_case "restart budget exhausted" `Quick
            test_restart_budget_exhausted;
          Alcotest.test_case "restore at first checkpoint" `Quick
            test_restore_at_first_checkpoint;
          Alcotest.test_case "mid-reverse kill bitwise" `Quick
            test_mid_reverse_kill_bitwise;
          Alcotest.test_case "check_recovery on a ring" `Quick
            test_check_recovery_ring;
        ] );
      ( "binomial",
        [
          Alcotest.test_case "bitwise vs store-all, bounded peak" `Quick
            test_binomial_bitwise_and_bounded;
          Alcotest.test_case "corruption degrades, still bitwise" `Quick
            test_binomial_corruption_degrades;
        ] );
      ( "chaos",
        [ Alcotest.test_case "soak: 50 seeded combinations" `Slow test_chaos_soak ] );
    ]
