(* Interpreter, scheduler, and MPI runtime semantics. *)

open Parad_ir
open Parad_runtime
module B = Builder
module V = Value

let feq = Alcotest.float 1e-9

let cfg nthreads = { Interp.default_config with nthreads }

(* ---- serial semantics ---- *)

let test_arith () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "poly" ~params:[ "x", Ty.Float; "y", Ty.Float ] ~ret:Ty.Float
  in
  let x, y = match ps with [ a; b ] -> a, b | _ -> assert false in
  (* x*x + sin(y) / exp(x) *)
  let r =
    B.add b (B.mul b x x) (B.div b (B.sin_ b y) (B.exp_ b x))
  in
  B.return b (Some r);
  ignore (B.finish b);
  let res =
    Exec.run prog ~fname:"poly" ~setup:(fun _ ->
        [ V.VFloat 1.5; V.VFloat 0.7 ])
  in
  Alcotest.check feq "value"
    ((1.5 *. 1.5) +. (sin 0.7 /. exp 1.5))
    (V.to_float res.values.(0))

let test_loop_sum () =
  let prog = Prog.create () in
  let b, ps = B.func prog "sum" ~params:[ "n", Ty.Int ] ~ret:Ty.Float in
  let n = List.hd ps in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.to_float b i)));
  let r = B.load b acc (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  let res =
    Exec.run prog ~fname:"sum" ~setup:(fun _ -> [ V.VInt 100 ])
  in
  Alcotest.check feq "sum 0..99" 4950.0 (V.to_float res.values.(0))

let test_while_countdown () =
  let prog = Prog.create () in
  let b, ps = B.func prog "cd" ~params:[ "n", Ty.Int ] ~ret:Ty.Int in
  let n = List.hd ps in
  let cell = B.alloc b Ty.Int (B.i64 b 1) in
  let steps = B.alloc b Ty.Int (B.i64 b 1) in
  B.store b cell (B.i64 b 0) n;
  B.store b steps (B.i64 b 0) (B.i64 b 0);
  B.while_ b
    ~cond:(fun () -> B.gt b (B.load b cell (B.i64 b 0)) (B.i64 b 0))
    ~body:(fun () ->
      let v = B.load b cell (B.i64 b 0) in
      B.store b cell (B.i64 b 0) (B.div b v (B.i64 b 2));
      let s = B.load b steps (B.i64 b 0) in
      B.store b steps (B.i64 b 0) (B.add b s (B.i64 b 1)));
  let r = B.load b steps (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  let res = Exec.run prog ~fname:"cd" ~setup:(fun _ -> [ V.VInt 100 ]) in
  Alcotest.(check int) "halving steps" 7 (V.to_int res.values.(0))

let test_call_and_recursion () =
  let prog = Prog.create () in
  let b, ps = B.func prog "fact" ~params:[ "n", Ty.Int ] ~ret:Ty.Int in
  let n = List.hd ps in
  let c = B.le b n (B.i64 b 1) in
  let r =
    B.if_ b c ~results:[ Ty.Int ]
      ~then_:(fun () -> [ B.i64 b 1 ])
      ~else_:(fun () ->
        let m = B.sub b n (B.i64 b 1) in
        let sub = B.call b ~ret:Ty.Int "fact" [ m ] in
        [ B.mul b n sub ])
  in
  B.return b (Some (List.hd r));
  ignore (B.finish b);
  let res = Exec.run prog ~fname:"fact" ~setup:(fun _ -> [ V.VInt 10 ]) in
  Alcotest.(check int) "10!" 3628800 (V.to_int res.values.(0))

let test_out_of_bounds_detected () =
  let prog = Prog.create () in
  let b, _ = B.func prog "oob" ~params:[] ~ret:Ty.Float in
  let p = B.alloc b Ty.Float (B.i64 b 4) in
  let r = B.load b p (B.i64 b 9) in
  B.return b (Some r);
  ignore (B.finish b);
  match Exec.run prog ~fname:"oob" ~setup:(fun _ -> []) with
  | _ -> Alcotest.fail "out-of-bounds not detected"
  | exception V.Runtime_error _ -> ()

let test_use_after_free_detected () =
  let prog = Prog.create () in
  let b, _ = B.func prog "uaf" ~params:[] ~ret:Ty.Float in
  let p = B.alloc b Ty.Float (B.i64 b 4) in
  B.free b p;
  let r = B.load b p (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  match Exec.run prog ~fname:"uaf" ~setup:(fun _ -> []) with
  | _ -> Alcotest.fail "use-after-free not detected"
  | exception V.Runtime_error _ -> ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains what s sub =
  Alcotest.(check bool)
    (Printf.sprintf "%s mentions %S (got: %s)" what sub s)
    true (contains s sub)

let test_uaf_reports_provenance () =
  (* the report must name both ends of the stale access: where the buffer
     was allocated (function/variable), who freed it, and who read it *)
  let prog = Prog.create () in
  let b, _ = B.func prog "uaf" ~params:[] ~ret:Ty.Float in
  let p = B.alloc b Ty.Float (B.i64 b 4) in
  B.free b p;
  let r = B.load b p (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  match Exec.run prog ~fname:"uaf" ~setup:(fun _ -> []) with
  | _ -> Alcotest.fail "use-after-free not detected"
  | exception V.Runtime_error msg ->
    check_contains "uaf" msg "use after free";
    check_contains "uaf" msg "alloc at uaf/p";
    check_contains "uaf" msg "freed at uaf";
    check_contains "uaf" msg "stale access from uaf"

let test_double_free_reports_sites () =
  let prog = Prog.create () in
  let b, _ = B.func prog "dbl" ~params:[] ~ret:Ty.Unit in
  let p = B.alloc b Ty.Float (B.i64 b 2) in
  B.free b p;
  B.free b p;
  B.return b None;
  ignore (B.finish b);
  match Exec.run prog ~fname:"dbl" ~setup:(fun _ -> []) with
  | _ -> Alcotest.fail "double free not detected"
  | exception V.Runtime_error msg ->
    check_contains "double free" msg "double free";
    check_contains "double free" msg "alloc at dbl/p";
    check_contains "double free" msg "first freed at dbl"

let test_oob_reports_alloc_site () =
  let prog = Prog.create () in
  let b, _ = B.func prog "oob" ~params:[] ~ret:Ty.Float in
  let p = B.alloc b Ty.Float (B.i64 b 4) in
  let r = B.load b p (B.i64 b 9) in
  B.return b (Some r);
  ignore (B.finish b);
  match Exec.run prog ~fname:"oob" ~setup:(fun _ -> []) with
  | _ -> Alcotest.fail "out-of-bounds not detected"
  | exception V.Runtime_error msg ->
    check_contains "oob" msg "out of bounds";
    check_contains "oob" msg "alloc at oob/p"

let test_memory_poison_and_collect () =
  (* direct Memory-module coverage: free poisons, the poison carries
     provenance, double free raises, and gc_collect reports its count
     and poisons what it reclaims *)
  let m = Memory.create ~rank:0 in
  let a = Memory.alloc ~site:"t/a" m ~elem:Ty.Float ~size:2 ~kind:Instr.Heap
      ~socket:0 in
  let pa = { V.buf = a; off = 0 } in
  Memory.store ~who:"writer" pa 0 (V.VFloat 1.0);
  Memory.free ~site:"freer" m a;
  (match Memory.load ~who:"reader" pa 0 with
  | _ -> Alcotest.fail "poisoned load not detected"
  | exception V.Runtime_error msg ->
    check_contains "poison" msg "alloc at t/a";
    check_contains "poison" msg "freed at freer";
    check_contains "poison" msg "stale access from reader");
  (match Memory.free ~site:"again" m a with
  | _ -> Alcotest.fail "double free not detected"
  | exception V.Runtime_error msg ->
    check_contains "double" msg "first freed at freer");
  let g1 = Memory.alloc ~site:"t/g1" m ~elem:Ty.Float ~size:1 ~kind:Instr.Gc
      ~socket:0 in
  let g2 = Memory.alloc ~site:"t/g2" m ~elem:Ty.Float ~size:1 ~kind:Instr.Gc
      ~socket:0 in
  let collected = Memory.gc_collect m ~roots:[ V.VPtr { V.buf = g1; off = 0 } ] in
  Alcotest.(check int) "one unreachable buffer collected" 1 collected;
  Alcotest.(check bool) "root survives" false g1.V.freed;
  Alcotest.(check bool) "unreachable freed" true g2.V.freed;
  match Memory.load ~who:"later" { V.buf = g2; off = 0 } 0 with
  | _ -> Alcotest.fail "collected buffer not poisoned"
  | exception V.Runtime_error msg -> check_contains "gc poison" msg "freed at gc"

(* ---- parallel semantics ---- *)

(* parallel for writing out[i] = i^2; check all written, any width *)
let par_square_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "psq" ~params:[ "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let out, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      let x = B.to_float b i in
      B.store b out i (B.mul b x x));
  B.return b None;
  ignore (B.finish b);
  prog

let test_parallel_for_widths () =
  let prog = par_square_prog () in
  List.iter
    (fun w ->
      let out = ref V.VUnit in
      let res =
        Exec.run ~cfg:(cfg w) prog ~fname:"psq" ~setup:(fun ctx ->
            let o = Exec.zeros ctx 37 in
            out := o;
            [ o; V.VInt 37 ])
      in
      ignore res;
      let a = Exec.to_floats !out in
      Array.iteri
        (fun i x ->
          Alcotest.check feq (Printf.sprintf "w=%d out[%d]" w i)
            (float_of_int (i * i))
            x)
        a)
    [ 1; 2; 4; 7; 64 ]

let test_parallel_speedup () =
  let prog = par_square_prog () in
  let time w =
    let res =
      Exec.run ~cfg:(cfg w) prog ~fname:"psq" ~setup:(fun ctx ->
          [ Exec.zeros ctx 4096; V.VInt 4096 ])
    in
    res.makespan
  in
  let t1 = time 1 and t8 = time 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads faster (t1=%.0f t8=%.0f)" t1 t8)
    true
    (t8 < t1 /. 4.0)

let test_fork_barrier_reduction () =
  (* The Fig 7 manual min-reduction pattern: per-thread mins, barrier,
     then thread 0 combines. *)
  let prog = Prog.create () in
  let b, ps =
    B.func prog "minred"
      ~params:
        [ "data", Ty.Ptr Ty.Float; "n", Ty.Int; "out", Ty.Ptr Ty.Float ]
      ~ret:Ty.Unit
  in
  let data, n, out =
    match ps with [ a; b; c ] -> a, b, c | _ -> assert false
  in
  let nt = B.call b ~ret:Ty.Int "omp.max_threads" [] in
  let per = B.alloc b Ty.Float nt in
  B.fork b (fun ~tid ~nth:_ ->
      let big = B.f64 b infinity in
      let local = B.alloc b Ty.Float (B.i64 b 1) in
      B.store b local (B.i64 b 0) big;
      B.workshare b ~lo:(B.i64 b 0) ~hi:n (fun i ->
          let x = B.load b data i in
          let cur = B.load b local (B.i64 b 0) in
          B.store b local (B.i64 b 0) (B.min_ b cur x));
      B.store b per tid (B.load b local (B.i64 b 0));
      B.barrier b;
      let is0 = B.eq b tid (B.i64 b 0) in
      B.when_ b is0 (fun () ->
          let acc = B.alloc b Ty.Float (B.i64 b 1) in
          B.store b acc (B.i64 b 0) (B.f64 b infinity);
          B.for_n b nt (fun t ->
              let v = B.load b per t in
              let cur = B.load b acc (B.i64 b 0) in
              B.store b acc (B.i64 b 0) (B.min_ b cur v));
          B.store b out (B.i64 b 0) (B.load b acc (B.i64 b 0))));
  B.return b None;
  ignore (B.finish b);
  Verifier.check_prog prog;
  let data = Array.init 101 (fun i -> 50.0 -. float_of_int i +. 0.25) in
  List.iter
    (fun w ->
      let out = ref V.VUnit in
      ignore
        (Exec.run ~cfg:(cfg w) prog ~fname:"minred" ~setup:(fun ctx ->
             let o = Exec.zeros ctx 1 in
             out := o;
             [ Exec.floats ctx data; V.VInt (Array.length data); o ]));
      Alcotest.check feq
        (Printf.sprintf "min at %d threads" w)
        (-49.75)
        (Exec.to_floats !out).(0))
    [ 1; 3; 8 ]

let test_atomic_add_no_lost_updates () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "acc" ~params:[ "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let out, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun _ ->
      B.atomic_add b out (B.i64 b 0) (B.f64 b 1.0));
  B.return b None;
  ignore (B.finish b);
  let out = ref V.VUnit in
  ignore
    (Exec.run ~cfg:(cfg 8) prog ~fname:"acc" ~setup:(fun ctx ->
         let o = Exec.zeros ctx 1 in
         out := o;
         [ o; V.VInt 1000 ]));
  Alcotest.check feq "1000 atomic increments" 1000.0 (Exec.to_floats !out).(0)

let test_tasks () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "work" ~params:[ "out", Ty.Ptr Ty.Float; "i", Ty.Int ]
      ~ret:Ty.Unit
  in
  let out, i = match ps with [ a; b ] -> a, b | _ -> assert false in
  let x = B.to_float b i in
  B.store b out i (B.mul b x x);
  B.return b None;
  ignore (B.finish b);
  let b, ps =
    B.func prog "spawner" ~params:[ "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let out, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let handles = B.alloc b Ty.Int n in
  B.for_n b n (fun i ->
      let h = B.spawn b "work" [ out; i ] in
      B.store b handles i h);
  B.for_n b n (fun i -> B.sync b (B.load b handles i));
  B.return b None;
  ignore (B.finish b);
  Verifier.check_prog prog;
  let out = ref V.VUnit in
  ignore
    (Exec.run prog ~fname:"spawner" ~setup:(fun ctx ->
         let o = Exec.zeros ctx 16 in
         out := o;
         [ o; V.VInt 16 ]));
  Array.iteri
    (fun i x -> Alcotest.check feq "task result" (float_of_int (i * i)) x)
    (Exec.to_floats !out)

let test_determinism () =
  let prog = par_square_prog () in
  let go () =
    let res =
      Exec.run ~cfg:(cfg 8) prog ~fname:"psq" ~setup:(fun ctx ->
          [ Exec.zeros ctx 257; V.VInt 257 ])
    in
    res.makespan, res.stats.Stats.instrs
  in
  let a = go () and b = go () in
  Alcotest.(check (pair (float 0.0) int)) "identical reruns" a b

(* ---- MPI ---- *)

let ring_prog () =
  (* each rank sends its rank value to the next, receives from prev,
     returns received value *)
  let prog = Prog.create () in
  let b, _ = B.func prog "ring" ~params:[] ~ret:Ty.Float in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let next = B.rem b (B.add b rank (B.i64 b 1)) size in
  let prev = B.rem b (B.add b rank (B.sub b size (B.i64 b 1))) size in
  let sendbuf = B.alloc b Ty.Float (B.i64 b 1) in
  let recvbuf = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b sendbuf (B.i64 b 0) (B.to_float b rank);
  let one = B.i64 b 1 and tag = B.i64 b 7 in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ sendbuf; one; next; tag ] in
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ recvbuf; one; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  let r = B.load b recvbuf (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  prog

let test_mpi_ring () =
  let prog = ring_prog () in
  let res =
    Exec.run_spmd prog ~nranks:5 ~fname:"ring" ~setup:(fun _ ~rank:_ -> [])
  in
  Array.iteri
    (fun rank v ->
      let expect = float_of_int ((rank + 4) mod 5) in
      Alcotest.check feq (Printf.sprintf "rank %d" rank) expect (V.to_float v))
    res.values

let test_mpi_allreduce () =
  let prog = Prog.create () in
  let b, _ = B.func prog "ar" ~params:[] ~ret:Ty.Float in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let s = B.alloc b Ty.Float (B.i64 b 1) in
  let r = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b s (B.i64 b 0) (B.to_float b rank);
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ s; r; B.i64 b 1 ]);
  B.return b (Some (B.load b r (B.i64 b 0)));
  ignore (B.finish b);
  let res =
    Exec.run_spmd prog ~nranks:8 ~fname:"ar" ~setup:(fun _ ~rank:_ -> [])
  in
  Array.iter
    (fun v -> Alcotest.check feq "sum of ranks" 28.0 (V.to_float v))
    res.values

let test_mpi_distinct_address_spaces () =
  (* passing a pointer of rank 0 into rank 1's code must be detected; we
     simulate by allocating in rank 0's ctx inside setup for every rank *)
  let prog = Prog.create () in
  let b, ps =
    B.func prog "touch" ~params:[ "p", Ty.Ptr Ty.Float ] ~ret:Ty.Float
  in
  let p = List.hd ps in
  B.return b (Some (B.load b p (B.i64 b 0)));
  ignore (B.finish b);
  let stolen = ref None in
  match
    Exec.run_spmd prog ~nranks:2 ~fname:"touch" ~setup:(fun ctx ~rank ->
        let mine = Exec.floats ctx [| 1.0 |] in
        if rank = 0 then begin
          stolen := Some mine;
          [ mine ]
        end
        else [ Option.get !stolen ])
  with
  | _ -> Alcotest.fail "cross-rank access not detected"
  | exception V.Runtime_error _ -> ()

let test_mpi_deadlock_detected () =
  let prog = Prog.create () in
  let b, _ = B.func prog "dl" ~params:[] ~ret:Ty.Unit in
  (* everyone receives from rank 0, nobody sends *)
  let buf = B.alloc b Ty.Float (B.i64 b 1) in
  ignore
    (B.call b ~ret:Ty.Unit "mpi.recv"
       [ buf; B.i64 b 1; B.i64 b 0; B.i64 b 3 ]);
  B.return b None;
  ignore (B.finish b);
  match
    Exec.run_spmd prog ~nranks:2 ~fname:"dl" ~setup:(fun _ ~rank:_ -> [])
  with
  | _ -> Alcotest.fail "deadlock not detected"
  | exception Sim.Deadlock d ->
    (* the diagnosis must identify every parked strand and describe the
       receive it is stuck on *)
    Alcotest.(check int) "both ranks parked" 2 (List.length d.Sim.d_blocked);
    List.iter
      (fun b ->
        Alcotest.(check bool)
          (Printf.sprintf "strand %d blames the recv (%s)" b.Sim.b_sid
             b.Sim.b_desc)
          true
          (String.length b.Sim.b_desc > 0
          && b.Sim.b_desc <> "an unfilled event"))
      d.Sim.d_blocked

let test_mpi_scaling_shape () =
  (* fixed total work split across ranks + allreduce: more ranks => faster,
     with diminishing returns *)
  let prog = Prog.create () in
  let b, ps =
    B.func prog "work" ~params:[ "total", Ty.Int ] ~ret:Ty.Float
  in
  let total = List.hd ps in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let per = B.div b total size in
  let lo = B.mul b rank per in
  let hi = B.add b lo per in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_ b ~lo ~hi (fun i ->
      let x = B.to_float b i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.sqrt_ b x)));
  let out = B.alloc b Ty.Float (B.i64 b 1) in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; B.i64 b 1 ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  let time n =
    (Exec.run_spmd prog ~nranks:n ~fname:"work" ~setup:(fun _ ~rank:_ ->
         [ V.VInt 65536 ]))
      .makespan
  in
  let t1 = time 1 and t8 = time 8 in
  Alcotest.(check bool)
    (Printf.sprintf "mpi speedup (t1=%.0f t8=%.0f)" t1 t8)
    true
    (t8 < t1 /. 3.0)

(* ---- GC model ---- *)

let test_gc_preserve () =
  let prog = Prog.create () in
  let b, _ = B.func prog "g" ~params:[] ~ret:Ty.Float in
  (* allocate a GC buffer reachable only through a cache (not a frame),
     collect, then read it back: preserved => ok *)
  let p = B.alloc b ~kind:Instr.Gc Ty.Float (B.i64 b 1) in
  B.store b p (B.i64 b 0) (B.f64 b 42.0);
  let c = B.call b ~ret:Ty.Int "cache.new" [ B.i64 b 1 ] in
  ignore (B.call b ~ret:Ty.Unit "cache.set" [ c; B.i64 b 0; p ]);
  let tok = B.call b ~ret:Ty.Int "gc.preserve_begin" [ p ] in
  (* drop the only frame reference by shadowing: we can't unbind SSA vars,
     so instead verify collect does NOT free reachable-from-frame buffers,
     and the preserved test below uses a task frame boundary. Here: the
     buffer is in the frame, so it survives regardless; with preserve it
     must also survive. *)
  let n = B.call b ~ret:Ty.Int "gc.collect" [] in
  ignore n;
  ignore (B.call b ~ret:Ty.Unit "gc.preserve_end" [ tok ]);
  let q = B.call b ~ret:(Ty.Ptr Ty.Float) "cache.get" [ c; B.i64 b 0 ] in
  B.return b (Some (B.load b q (B.i64 b 0)));
  ignore (B.finish b);
  let res =
    Exec.run
      ~cfg:{ Interp.default_config with gc_aggressive = true }
      prog ~fname:"g"
      ~setup:(fun _ -> [])
  in
  Alcotest.check feq "preserved value" 42.0 (V.to_float res.values.(0))

let () =
  Alcotest.run "runtime"
    [
      ( "serial",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "while" `Quick test_while_countdown;
          Alcotest.test_case "recursion" `Quick test_call_and_recursion;
          Alcotest.test_case "bounds check" `Quick test_out_of_bounds_detected;
          Alcotest.test_case "uaf provenance" `Quick test_uaf_reports_provenance;
          Alcotest.test_case "double-free provenance" `Quick
            test_double_free_reports_sites;
          Alcotest.test_case "oob alloc site" `Quick test_oob_reports_alloc_site;
          Alcotest.test_case "poison and collect" `Quick
            test_memory_poison_and_collect;
          Alcotest.test_case "use-after-free" `Quick
            test_use_after_free_detected;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "parallel for widths" `Quick
            test_parallel_for_widths;
          Alcotest.test_case "speedup" `Quick test_parallel_speedup;
          Alcotest.test_case "manual min reduction" `Quick
            test_fork_barrier_reduction;
          Alcotest.test_case "atomic adds" `Quick
            test_atomic_add_no_lost_updates;
          Alcotest.test_case "tasks" `Quick test_tasks;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "mpi",
        [
          Alcotest.test_case "ring" `Quick test_mpi_ring;
          Alcotest.test_case "allreduce" `Quick test_mpi_allreduce;
          Alcotest.test_case "address spaces" `Quick
            test_mpi_distinct_address_spaces;
          Alcotest.test_case "deadlock" `Quick test_mpi_deadlock_detected;
          Alcotest.test_case "scaling shape" `Quick test_mpi_scaling_shape;
        ] );
      "gc", [ Alcotest.test_case "preserve" `Quick test_gc_preserve ];
    ]
