(* ParSan: the runtime sanitizer layer — RaceSan (with static/dynamic
   cross-validation), MemSan (leaks, uninitialized reads), and GradSan
   (first-origin NaN/Inf tracking with strict abort or graceful
   degradation). *)

open Parad_ir
open Parad_runtime
module B = Builder
module V = Value
module San = Sanitizer
module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude

let cfg nthreads = { Interp.default_config with nthreads }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains what s sub =
  Alcotest.(check bool)
    (Printf.sprintf "%s mentions %S (got: %s)" what sub s)
    true (contains s sub)

let check_clean what (san : San.t) =
  Alcotest.(check int)
    (Printf.sprintf "%s: exit code" what)
    0 (San.exit_code san);
  Alcotest.(check bool)
    (Printf.sprintf "%s: no findings (got: %s)" what
       (Fmt.str "%a" San.pp_report san))
    true (San.clean san)

(* ---- tiny kernels ---- *)

(* per-element map: y[i] = x[i]*x[i] + sin(x[i]), workshared *)
let sq_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "sq"
      ~params:[ "x", Ty.Ptr Ty.Float; "y", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, y, n = match ps with [ a; b; c ] -> a, b, c | _ -> assert false in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      let xi = B.load b x i in
      B.store b y i (B.add b (B.mul b xi xi) (B.sin_ b xi)));
  B.return b None;
  ignore (B.finish b);
  prog

(* every iteration reads the single shared scalar x[0]: the adjoint
   accumulates every thread's contribution into one shadow cell *)
let shared_read_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "shr"
      ~params:[ "x", Ty.Ptr Ty.Float; "y", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, y, n = match ps with [ a; b; c ] -> a, b, c | _ -> assert false in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      let x0 = B.load b x (B.i64 b 0) in
      B.store b y i (B.mul b x0 (B.to_float b i)));
  B.return b None;
  ignore (B.finish b);
  prog

(* run the reverse of a unit-returning 2-pointer kernel; returns the
   shadow of [x] plus the primal [y] values *)
let grad_sq ?san ?(opts = Parad_core.Plan.default_options) ~nthreads prog
    fname xs =
  let n = Array.length xs in
  let dprog, dname = Parad_core.Reverse.gradient ~opts prog fname in
  let dprog = Parad_opt.Pipeline.run dprog Parad_opt.Pipeline.post_ad in
  let dx_ref = ref None in
  ignore
    (Exec.run ~cfg:(cfg nthreads) ?san dprog ~fname:dname ~setup:(fun ctx ->
         let x = Exec.floats ctx xs in
         let y = Exec.zeros ctx n in
         let dx = Exec.zeros ctx n in
         let dy = Exec.floats ctx (Array.make n 1.0) in
         dx_ref := Some dx;
         [ x; y; V.VInt n; dx; dy ]));
  Exec.to_floats (Option.get !dx_ref)

(* ---- RaceSan ---- *)

let test_plain_race_flagged () =
  (* all threads store to the same cell of a function-allocated buffer:
     an ordinary data race (no privacy claim), exit code 1 *)
  let prog = Prog.create () in
  let b, _ = B.func prog "racy" ~params:[] ~ret:Ty.Float in
  let cell = B.alloc b Ty.Float (B.i64 b 1) in
  B.fork b (fun ~tid ~nth:_ ->
      B.store b cell (B.i64 b 0) (B.to_float b tid));
  let r = B.load b cell (B.i64 b 0) in
  B.free b cell;
  B.return b (Some r);
  ignore (B.finish b);
  let san = San.create () in
  ignore (Exec.run ~cfg:(cfg 4) ~san prog ~fname:"racy" ~setup:(fun _ -> []));
  Alcotest.(check bool) "a race was found" true (san.San.races > 0);
  Alcotest.(check int) "no miscompilation" 0 san.San.miscompiles;
  Alcotest.(check int) "exit code 1" 1 (San.exit_code san);
  match San.findings san with
  | f :: _ ->
    check_contains "race finding" f.San.msg "data race";
    check_contains "race finding names the site" f.San.msg "racy/p"
  | [] -> Alcotest.fail "no finding recorded"

let test_workshare_disjoint_clean () =
  (* disjoint per-iteration writes are not races *)
  let san = San.create () in
  let dx =
    grad_sq ~san ~nthreads:4 (sq_prog ()) "sq"
      (Array.init 8 (fun i -> 0.1 *. float_of_int (i + 1)))
  in
  Alcotest.(check int) "gradient length" 8 (Array.length dx);
  check_clean "workshared sq gradient" san

let test_seeded_miscompile_exit5 () =
  (* assume_private compiles the shared-scalar adjoint as if the shadow
     were thread-private (the deliberate inverse of atomic_always): the
     resulting non-atomic cross-thread accumulation lands on a cell the
     static analysis claimed private — a miscompilation, exit code 5 *)
  let opts =
    { Parad_core.Plan.default_options with assume_private = true }
  in
  let san = San.create () in
  ignore
    (grad_sq ~san ~opts ~nthreads:4 (shared_read_prog ()) "shr"
       (Array.init 8 (fun i -> 0.1 *. float_of_int (i + 1))));
  Alcotest.(check bool)
    "miscompilation found" true (san.San.miscompiles > 0);
  Alcotest.(check int) "exit code 5" 5 (San.exit_code san);
  match San.findings san with
  | f :: _ ->
    Alcotest.(check bool)
      "classified as miscompilation" true (f.San.cls = San.Miscompile);
    check_contains "finding" f.San.msg "claimed buffer";
    check_contains "finding" f.San.msg "thread-private"
  | [] -> Alcotest.fail "no finding recorded"

let test_default_and_atomic_always_clean () =
  (* the same shared-scalar kernel sanitizes clean under the default plan
     (static analysis forces safe accumulation) and under the abl-tl
     ablation (atomic_always: every accumulation is atomic) *)
  let xs = Array.init 8 (fun i -> 0.1 *. float_of_int (i + 1)) in
  let san = San.create () in
  let dx = grad_sq ~san ~nthreads:4 (shared_read_prog ()) "shr" xs in
  check_clean "default plan" san;
  let opts =
    { Parad_core.Plan.default_options with atomic_always = true }
  in
  let san' = San.create () in
  let dx' = grad_sq ~san:san' ~opts ~nthreads:4 (shared_read_prog ()) "shr" xs in
  check_clean "atomic_always ablation" san';
  Alcotest.(check (array (float 1e-12)))
    "both plans agree on the gradient" dx dx'

(* ---- MemSan ---- *)

let test_leak_reported_with_site () =
  let prog = Prog.create () in
  let b, _ = B.func prog "leaky" ~params:[] ~ret:Ty.Float in
  let p = B.alloc b Ty.Float (B.i64 b 4) in
  B.store b p (B.i64 b 0) (B.f64 b 7.0);
  let r = B.load b p (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  let san = San.create () in
  ignore (Exec.run ~san prog ~fname:"leaky" ~setup:(fun _ -> []));
  Alcotest.(check int) "one leak" 1 san.San.leaks;
  Alcotest.(check int) "exit code 1" 1 (San.exit_code san);
  match San.findings san with
  | f :: _ ->
    check_contains "leak finding" f.San.msg "leaked buffer";
    check_contains "leak finding names the site" f.San.msg "leaky/p"
  | [] -> Alcotest.fail "no finding recorded"

let test_uninit_read_pedantic_only () =
  let mk () =
    let prog = Prog.create () in
    let b, _ = B.func prog "cold" ~params:[] ~ret:Ty.Float in
    let p = B.alloc b Ty.Float (B.i64 b 2) in
    B.store b p (B.i64 b 0) (B.f64 b 1.0);
    (* cell [1] is read but never written *)
    let r = B.add b (B.load b p (B.i64 b 0)) (B.load b p (B.i64 b 1)) in
    B.free b p;
    B.return b (Some r);
    ignore (B.finish b);
    prog
  in
  (* default: adjoint-style zero-init reads are legitimate, no finding *)
  let san = San.create () in
  ignore (Exec.run ~san (mk ()) ~fname:"cold" ~setup:(fun _ -> []));
  check_clean "default (non-pedantic)" san;
  (* pedantic: the never-written cell is flagged, once *)
  let san' = San.create ~uninit:true () in
  ignore (Exec.run ~san:san' (mk ()) ~fname:"cold" ~setup:(fun _ -> []));
  Alcotest.(check int) "one uninit read" 1 san'.San.uninit_reads;
  match San.findings san' with
  | f :: _ ->
    check_contains "uninit finding" f.San.msg "uninitialized";
    check_contains "uninit finding" f.San.msg "cell [1]"
  | [] -> Alcotest.fail "no finding recorded"

(* ---- GradSan ---- *)

let test_strict_aborts_with_provenance () =
  let xs = Array.init 6 (fun i -> 0.1 *. float_of_int (i + 1)) in
  xs.(2) <- Float.nan;
  let san = San.create ~mode:San.Strict () in
  match grad_sq ~san ~nthreads:2 (sq_prog ()) "sq" xs with
  | _ -> Alcotest.fail "strict mode did not abort on NaN"
  | exception San.Nonfinite_strict msg ->
    check_contains "provenance" msg "NaN";
    check_contains "provenance names the cell" msg "cell [2]"

let test_degrade_quarantines_bit_identical () =
  (* degrade mode quarantines the poison and finishes with exit code 4;
     every component the poison did not corrupt must be bit-identical to
     the unsanitized run on the same input *)
  let mk () =
    let xs = Array.init 6 (fun i -> 0.1 *. float_of_int (i + 1)) in
    xs.(2) <- Float.nan;
    xs
  in
  let unsan = grad_sq ~nthreads:2 (sq_prog ()) "sq" (mk ()) in
  Alcotest.(check bool)
    "unsanitized gradient is corrupted" true
    (Array.exists Float.is_nan unsan);
  let san = San.create ~mode:San.Degrade () in
  let deg = grad_sq ~san ~nthreads:2 (sq_prog ()) "sq" (mk ()) in
  Alcotest.(check bool) "poison quarantined" true (san.San.quarantined > 0);
  Alcotest.(check int) "exit code 4" 4 (San.exit_code san);
  Alcotest.(check bool)
    "degraded gradient is NaN-free" false
    (Array.exists Float.is_nan deg);
  Array.iteri
    (fun i u ->
      if not (Float.is_nan u) then
        Alcotest.(check int64)
          (Printf.sprintf "component %d bit-identical" i)
          (Int64.bits_of_float u)
          (Int64.bits_of_float deg.(i)))
    unsan

(* ---- applications ---- *)

let lulesh_inp =
  { L.nx = 2; ny = 2; nz = 2; niter = 2; dt0 = 0.01; escale = 1.0 }

let test_lulesh_omp_sanitizes_clean () =
  let san = San.create () in
  let r = L.run ~nthreads:2 ~san L.Omp lulesh_inp in
  Alcotest.(check bool) "primal energy finite" true
    (Float.is_finite r.L.total_energy);
  check_clean "lulesh_omp primal" san;
  let san' = San.create () in
  let g = L.gradient ~nthreads:2 ~san:san' L.Omp lulesh_inp in
  Alcotest.(check bool) "gradient nonempty" true
    (Array.length g.L.d_energy.(0) > 0);
  check_clean "lulesh_omp gradient" san'

let test_minibude_omp_sanitizes_clean () =
  let inp = MB.deck ~nposes:8 ~natlig:4 ~natpro:8 in
  let san = San.create () in
  let g = MB.gradient ~nthreads:2 ~san MB.Omp inp in
  Alcotest.(check int) "gradient per pose datum" (6 * 8)
    (Array.length g.MB.d_poses);
  check_clean "bude_omp gradient" san

let test_lulesh_seeded_miscompile () =
  let opts =
    { Parad_core.Plan.default_options with assume_private = true }
  in
  let san = San.create () in
  let g = L.gradient ~nthreads:4 ~opts ~san L.Omp lulesh_inp in
  ignore g;
  Alcotest.(check bool)
    "miscompilation found" true (san.San.miscompiles > 0);
  Alcotest.(check int) "exit code 5" 5 (San.exit_code san)

let test_lulesh_degrade_nan_injection () =
  let unsan = L.gradient ~nthreads:2 ~inject_nan:1 L.Omp lulesh_inp in
  let san = San.create ~mode:San.Degrade () in
  let deg = L.gradient ~nthreads:2 ~san ~inject_nan:1 L.Omp lulesh_inp in
  Alcotest.(check bool) "poison quarantined" true (san.San.quarantined > 0);
  Alcotest.(check int) "exit code 4" 4 (San.exit_code san);
  Alcotest.(check bool)
    "degraded gradient is NaN-free" false
    (Array.exists Float.is_nan deg.L.d_energy.(0));
  (* components the poison never reached must be bit-identical *)
  Array.iteri
    (fun i u ->
      if not (Float.is_nan u) then
        Alcotest.(check int64)
          (Printf.sprintf "d_energy[%d] bit-identical" i)
          (Int64.bits_of_float u)
          (Int64.bits_of_float deg.L.d_energy.(0).(i)))
    unsan.L.d_energy.(0)

let test_sanitize_composes_with_faults () =
  (* RaceSan/MemSan/GradSan stay clean while the drop-retry fault plan
     exercises the MPI retry machinery underneath *)
  let inp = { L.nx = 2; ny = 2; nz = 4; niter = 2; dt0 = 0.01; escale = 1.0 } in
  let plan = Faults.plan_of_name ~nranks:2 "drop-retry" in
  let san = San.create () in
  let g = L.gradient ~nranks:2 ~faults:plan ~san L.Mpi inp in
  Alcotest.(check bool) "gradient nonempty" true
    (Array.length g.L.d_energy.(0) > 0);
  check_clean "lulesh_mpi gradient under drop-retry" san

let () =
  Alcotest.run "sanitize"
    [
      ( "racesan",
        [
          Alcotest.test_case "plain race flagged" `Quick
            test_plain_race_flagged;
          Alcotest.test_case "disjoint workshare clean" `Quick
            test_workshare_disjoint_clean;
          Alcotest.test_case "seeded miscompile exits 5" `Quick
            test_seeded_miscompile_exit5;
          Alcotest.test_case "default and abl-tl clean" `Quick
            test_default_and_atomic_always_clean;
        ] );
      ( "memsan",
        [
          Alcotest.test_case "leak names alloc site" `Quick
            test_leak_reported_with_site;
          Alcotest.test_case "uninit pedantic only" `Quick
            test_uninit_read_pedantic_only;
        ] );
      ( "gradsan",
        [
          Alcotest.test_case "strict aborts with provenance" `Quick
            test_strict_aborts_with_provenance;
          Alcotest.test_case "degrade bit-identical" `Quick
            test_degrade_quarantines_bit_identical;
        ] );
      ( "apps",
        [
          Alcotest.test_case "lulesh omp clean" `Quick
            test_lulesh_omp_sanitizes_clean;
          Alcotest.test_case "minibude omp clean" `Quick
            test_minibude_omp_sanitizes_clean;
          Alcotest.test_case "lulesh seeded miscompile" `Quick
            test_lulesh_seeded_miscompile;
          Alcotest.test_case "lulesh degrade nan injection" `Quick
            test_lulesh_degrade_nan_injection;
          Alcotest.test_case "composes with faults" `Quick
            test_sanitize_composes_with_faults;
        ] );
    ]
