(* Gradient service: JSON codec, plan-cache correctness (warm results
   bit-identical to cold), admission shedding, circuit-breaker
   lifecycle, deadline classification, checkpoint namespace hygiene,
   and a mini seeded slam soak. *)

open Parad_runtime
module S = Parad_server.Service
module J = Parad_server.Json
module PC = Parad_server.Plan_cache
module Bk = Parad_server.Breaker
module Slam = Parad_server.Slam
module L = Apps_lulesh.Lulesh

let req fields = J.to_string (J.Obj fields)

let send svc fields =
  match J.of_string (S.handle_line svc (req fields)) with
  | Ok r -> r
  | Error m -> Alcotest.failf "unparseable response: %s" m

let cls r = Option.value (J.str_field "class" r) ~default:"<none>"
let digest r = J.str_field "digest" r

let base ?(niter = 2) flavor nranks =
  [
    "flavor", J.Str flavor;
    "nranks", J.Num (float_of_int nranks);
    "niter", J.Num (float_of_int niter);
  ]

let no_watchdog = { S.default_config with S.watchdog_ms = None }

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        "s", J.Str "a\"b\\c\nd";
        "f", J.Num 0.1;
        "i", J.Num 42.0;
        "neg", J.Num (-1.5e-9);
        "b", J.Bool true;
        "z", J.Null;
        "a", J.Arr [ J.Num 1.0; J.Str "x"; J.Obj [] ];
      ]
  in
  match J.of_string (J.to_string v) with
  | Error m -> Alcotest.failf "roundtrip parse failed: %s" m
  | Ok v' ->
    Alcotest.(check string) "print . parse . print is stable"
      (J.to_string v) (J.to_string v');
    (* floats survive bit-exactly through %.17g *)
    Alcotest.(check (option int)) "int field" (Some 42) (J.int_field "i" v');
    match J.num_field "neg" v' with
    | Some f ->
      Alcotest.(check int64) "float bits survive" (Int64.bits_of_float (-1.5e-9))
        (Int64.bits_of_float f)
    | None -> Alcotest.fail "neg field lost"

let test_json_errors () =
  let bad s =
    match J.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
  in
  bad "";
  bad "{";
  bad "{\"a\": }";
  bad "[1, 2";
  bad "nul";
  bad "{\"a\": 1} trailing";
  bad "\"unterminated"

(* ---- plan-cache LRU ---- *)

let test_cache_lru () =
  let c = PC.create ~cap:2 in
  let compiled = ref [] in
  let get k =
    fst
      (PC.get_or_compile c k ~compile:(fun () ->
           compiled := k :: !compiled;
           k))
  in
  Alcotest.(check string) "miss compiles" "a" (get "a");
  Alcotest.(check string) "hit returns cached" "a" (get "a");
  Alcotest.(check int) "one compile so far" 1 (List.length !compiled);
  ignore (get "b");
  ignore (get "a") (* touch a: now b is the LRU victim *);
  ignore (get "c") (* evicts b *);
  Alcotest.(check bool) "a survived (recently used)" true (PC.mem c "a");
  Alcotest.(check bool) "b evicted" false (PC.mem c "b");
  ignore (get "b");
  Alcotest.(check int) "b recompiled after eviction" 2
    (List.length (List.filter (( = ) "b") !compiled));
  Alcotest.(check int) "evictions counted" 2 c.PC.evictions;
  Alcotest.(check int) "hits counted" 2 c.PC.hits

(* ---- breaker unit transitions ---- *)

let test_breaker_transitions () =
  let b = Bk.create ~k:2 ~cooldown:2 in
  let admit () = Bk.admit b and record ok = Bk.record b ~ok in
  Alcotest.(check bool) "starts closed" true (Bk.state b = Bk.Closed);
  ignore (admit ());
  record false;
  ignore (admit ());
  record true (* success resets the consecutive count *);
  ignore (admit ());
  record false;
  Alcotest.(check bool) "still closed below k" true (Bk.state b = Bk.Closed);
  ignore (admit ());
  record false (* second consecutive: trips *);
  Alcotest.(check int) "tripped" 1 b.Bk.trips;
  Alcotest.(check bool) "reject while open" true (admit () = Bk.Reject);
  Alcotest.(check bool) "still rejecting through the cooldown" true
    (admit () = Bk.Reject);
  Alcotest.(check bool) "half-open probe after cooldown" true
    (admit () = Bk.Probe);
  record false (* failed probe re-opens *);
  Alcotest.(check int) "re-trip counted" 2 b.Bk.trips;
  ignore (admit ());
  ignore (admit ());
  Alcotest.(check bool) "probe again" true (admit () = Bk.Probe);
  record true;
  Alcotest.(check bool) "recovered to closed" true (Bk.state b = Bk.Closed);
  Alcotest.(check int) "recovery counted" 1 b.Bk.recoveries

(* ---- plan-cache correctness through the service ---- *)

let test_warm_bit_identical () =
  let svc = S.create ~cfg:no_watchdog () in
  let fields = base "mpi" 2 in
  let cold = send svc fields in
  let warm1 = send svc fields in
  let warm2 = send svc fields in
  Alcotest.(check string) "cold ok" "ok" (cls cold);
  Alcotest.(check (option bool)) "cold is a miss" (Some false)
    (J.bool_field "cached" cold);
  Alcotest.(check (option bool)) "warm is a hit" (Some true)
    (J.bool_field "cached" warm1);
  Alcotest.(check (option bool)) "still warm" (Some true)
    (J.bool_field "cached" warm2);
  Alcotest.(check bool) "digest present" true (digest cold <> None);
  Alcotest.(check (option string)) "warm digest = cold" (digest cold)
    (digest warm1);
  Alcotest.(check (option string)) "third run too" (digest cold)
    (digest warm2);
  (* fresh Stats per request: virtual exec cycles identical, so nothing
     accumulated across requests *)
  Alcotest.(check (option (float 0.0))) "exec cycles identical"
    (J.num_field "exec_cycles" cold)
    (J.num_field "exec_cycles" warm1)

let test_clean_after_failure_same_key () =
  (* a deadlocked request must not poison the cached plan: the next
     clean request on the same key still yields the cold digest *)
  let svc = S.create ~cfg:no_watchdog () in
  let fields = base "mpi" 2 in
  let cold = send svc fields in
  let failed = send svc (("faults", J.Str "blackhole") :: fields) in
  Alcotest.(check string) "fault classified as deadlock" "deadlock"
    (cls failed);
  let after = send svc fields in
  Alcotest.(check string) "clean again" "ok" (cls after);
  Alcotest.(check (option string)) "digest unchanged after failure"
    (digest cold) (digest after)

let test_binomial_matches_monolithic () =
  (* distinct plan keys (b0 vs b2), same gradient bits *)
  let svc = S.create ~cfg:no_watchdog () in
  let mono = send svc (base ~niter:3 "mpi" 2) in
  let binom =
    send svc (("snap_budget", J.Num 2.0) :: base ~niter:3 "mpi" 2)
  in
  Alcotest.(check string) "binomial ok" "ok" (cls binom);
  Alcotest.(check bool) "different plan keys" true
    (J.str_field "plan_key" mono <> J.str_field "plan_key" binom);
  Alcotest.(check (option string)) "bit-identical gradients" (digest mono)
    (digest binom)

(* ---- request validation ---- *)

let test_validation () =
  let svc = S.create ~cfg:no_watchdog () in
  let invalid fields =
    let r = send svc fields in
    Alcotest.(check string)
      (Printf.sprintf "%s rejected" (req fields))
      "invalid" (cls r);
    Alcotest.(check bool) "carries an error message" true
      (J.str_field "error" r <> None)
  in
  invalid [ "flavor", J.Str "cuda" ];
  invalid [ "nranks", J.Num 3.0 ];
  invalid (base "seq" 2) (* seq is not MPI-capable *);
  invalid [ "app", J.Str "bude"; "nranks", J.Num 2.0 ];
  invalid [ "niter", J.Num 0.0 ];
  invalid [ "escale", J.Num 0.0 ];
  invalid [ "deadline_cycles", J.Num (-5.0) ];
  invalid [ "deadline_ms", J.Num 0.0 ];
  invalid [ "faults", J.Str "warp-core-breach" ];
  invalid [ "sanitize", J.Str "maybe" ];
  invalid [ "app", J.Str "hpcg" ];
  (* bad JSON is a classified response, not a dead server *)
  let r =
    match J.of_string (S.handle_line svc "{oops") with
    | Ok r -> r
    | Error m -> Alcotest.failf "bad response: %s" m
  in
  Alcotest.(check string) "malformed line classified" "invalid" (cls r);
  let ok = send svc (base "mpi" 2) in
  Alcotest.(check string) "server still healthy" "ok" (cls ok)

(* ---- deadlines ---- *)

let test_deadline_classified () =
  let svc = S.create ~cfg:no_watchdog () in
  let r = send svc (("deadline_cycles", J.Num 100.0) :: base "mpi" 2) in
  Alcotest.(check string) "busted deadline classified" "deadline" (cls r);
  Alcotest.(check (option int)) "code 6" (Some 6) (J.int_field "code" r);
  (* a huge deadline is semantically free: same bits as no deadline *)
  let free = send svc (base "omp" 1) in
  let guarded =
    send svc (("deadline_cycles", J.Num 1e12) :: base "omp" 1)
  in
  Alcotest.(check string) "guarded run ok" "ok" (cls guarded);
  Alcotest.(check (option string)) "deadline guard changes no bits"
    (digest free) (digest guarded)

(* ---- admission control ---- *)

let test_admission_sheds () =
  let cfg = { no_watchdog with S.workers = 2; queue_cap = 2 } in
  let svc = S.create ~cfg () in
  let shed = ref 0 and okc = ref 0 in
  for i = 1 to 8 do
    let r =
      send svc
        (("id", J.Num (float_of_int i))
        :: ("burst", J.Bool true)
        :: base "seq" 1)
    in
    match cls r with
    | "overloaded" ->
      incr shed;
      Alcotest.(check (option int)) "code 7" (Some 7) (J.int_field "code" r)
    | "ok" -> incr okc
    | c -> Alcotest.failf "unexpected class %s" c
  done;
  Alcotest.(check int) "workers + queue admitted" 4 !okc;
  Alcotest.(check int) "the rest shed" 4 !shed;
  Alcotest.(check int) "shed counter agrees" 4 svc.S.shed;
  (* closed-loop traffic after the burst is admitted again *)
  Alcotest.(check string) "recovers after burst" "ok"
    (cls (send svc (base "seq" 1)))

(* ---- breaker end-to-end ---- *)

let test_breaker_e2e () =
  let cfg = { no_watchdog with S.breaker_k = 2; breaker_cooldown = 2 } in
  let svc = S.create ~cfg () in
  let fields = base "hybrid" 2 in
  for _ = 1 to 2 do
    let r = send svc (("faults", J.Str "blackhole") :: fields) in
    Alcotest.(check string) "poisoned run deadlocks" "deadlock" (cls r)
  done;
  for _ = 1 to 2 do
    let r = send svc fields in
    Alcotest.(check string) "rejected while open" "breaker_open" (cls r);
    Alcotest.(check (option int)) "code 8" (Some 8) (J.int_field "code" r)
  done;
  let probe = send svc fields in
  Alcotest.(check string) "half-open probe recovers" "ok" (cls probe);
  let trips, probes, recoveries = S.breaker_totals svc in
  Alcotest.(check int) "one trip" 1 trips;
  Alcotest.(check bool) "probe counted" true (probes >= 1);
  Alcotest.(check int) "one recovery" 1 recoveries;
  (* other keys were never impeded *)
  Alcotest.(check string) "other plan keys unaffected" "ok"
    (cls (send svc (base "mpi" 2)))

(* ---- retries ---- *)

let test_retry_consumes_kill () =
  let svc = S.create ~cfg:no_watchdog () in
  let r =
    send svc
      (("faults", J.Str "kill")
      :: ("fault_seed", J.Num 5.0)
      :: base ~niter:3 "mpi" 2)
  in
  Alcotest.(check string) "kill retried to success" "ok" (cls r);
  Alcotest.(check bool) "at least one retry recorded" true
    (match J.int_field "retries" r with Some n -> n >= 1 | None -> false);
  (* the retried gradient matches a faultless run bit-for-bit *)
  let clean = send svc (base ~niter:3 "mpi" 2) in
  Alcotest.(check (option string)) "retried bits = clean bits" (digest clean)
    (digest r)

(* ---- batched seeds + coalescing ---- *)

let test_seeds_validation () =
  let svc = S.create ~cfg:no_watchdog () in
  let invalid fields =
    let r = send svc fields in
    Alcotest.(check string)
      (Printf.sprintf "%s rejected" (req fields))
      "invalid" (cls r)
  in
  invalid (("seeds", J.Num 0.0) :: base "omp" 1);
  invalid (("seeds", J.Num 2.0) :: base "mpi" 2) (* MPI can't batch *);
  invalid
    (("seeds", J.Num 2.0) :: ("snap_budget", J.Num 2.0) :: base "omp" 1);
  invalid
    (("seeds", J.Num 2.0) :: ("inject_nan", J.Num 3.0) :: base "omp" 1);
  (* seeds: 1 is the plain single-seed path, not an error *)
  Alcotest.(check string) "seeds=1 ok" "ok"
    (cls (send svc (("seeds", J.Num 1.0) :: base "omp" 1)))

let test_seeds_batched_ok () =
  let svc = S.create ~cfg:no_watchdog () in
  let fields = ("seeds", J.Num 4.0) :: base "omp" 1 in
  let cold = send svc fields in
  Alcotest.(check string) "batched sweep ok" "ok" (cls cold);
  Alcotest.(check bool) "seed width is in the plan key" true
    (match J.str_field "plan_key" cold with
    | Some k ->
      String.length k >= 3 && String.sub k (String.length k - 3) 3 = "|s4"
    | None -> false);
  (* a warm run replays the cached 4-lane plan bit-identically *)
  let svc2 = S.create ~cfg:no_watchdog () in
  let again = send svc2 fields in
  Alcotest.(check (option string)) "digest deterministic across services"
    (digest cold) (digest again);
  (* bude batches too *)
  let b =
    send svc
      [ "app", J.Str "bude"; "flavor", J.Str "omp"; "seeds", J.Num 3.0 ]
  in
  Alcotest.(check string) "bude batched ok" "ok" (cls b)

let test_seeds_coalesce () =
  let svc = S.create ~cfg:no_watchdog () in
  let fields = ("seeds", J.Num 2.0) :: base "omp" 1 in
  let first = send svc fields in
  Alcotest.(check string) "sweep ok" "ok" (cls first);
  (* identical signature arriving while the sweep is in flight rides it:
     same digest, no execution of its own *)
  let rider = send svc (("burst", J.Bool true) :: fields) in
  Alcotest.(check (option bool)) "rider coalesced" (Some true)
    (J.bool_field "coalesced" rider);
  Alcotest.(check (option string)) "rider digest = sweep digest"
    (digest first) (digest rider);
  Alcotest.(check (option (float 0.0))) "rider executes nothing"
    (Some 0.0)
    (J.num_field "exec_cycles" rider);
  (* a different signature on the same key must NOT ride *)
  let other =
    send svc
      (("burst", J.Bool true) :: ("seeds", J.Num 2.0) :: base ~niter:3 "omp" 1)
  in
  Alcotest.(check (option bool)) "different niter does not coalesce" None
    (J.bool_field "coalesced" other);
  (* faulty requests never ride a clean sweep *)
  let faulty =
    send svc (("burst", J.Bool true) :: ("faults", J.Str "drop-retry") :: fields)
  in
  Alcotest.(check (option bool)) "faulty request does not coalesce" None
    (J.bool_field "coalesced" faulty);
  Alcotest.(check int) "coalesced counter" 1 svc.S.coalesced;
  (* the stats line surfaces host wall time for the executed sweeps *)
  match S.handle_line svc {|{"cmd": "stats"}|} |> J.of_string with
  | Ok s ->
    Alcotest.(check bool) "summary carries wall_ns > 0" true
      (match J.num_field "wall_ns" s with Some w -> w > 0.0 | None -> false);
    Alcotest.(check (option int)) "summary counts riders" (Some 1)
      (J.int_field "coalesced" s)
  | Error m -> Alcotest.failf "bad stats reply: %s" m

(* ---- drain ---- *)

let test_drain () =
  let svc = S.create ~cfg:no_watchdog () in
  ignore (send svc (base "seq" 1));
  let d =
    match J.of_string (S.handle_line svc {|{"cmd": "drain"}|}) with
    | Ok d -> d
    | Error m -> Alcotest.failf "bad drain reply: %s" m
  in
  Alcotest.(check (option string)) "drain event" (Some "drained")
    (J.str_field "event" d);
  Alcotest.(check (option int)) "summary counts the work" (Some 1)
    (J.int_field "executed" d);
  let late = send svc (base "seq" 1) in
  Alcotest.(check string) "late request refused, classified" "overloaded"
    (cls late)

(* ---- checkpoint namespace hygiene ---- *)

let spill_files ns =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("parad-snap-" ^ ns)
  in
  if Sys.file_exists dir then Array.to_list (Sys.readdir dir) else []

let test_checkpoint_namespaces () =
  (* two stores with distinct namespaces spill to distinct directories;
     dispose removes every file and the directory itself *)
  let mk ns =
    Checkpoint.create_store
      ~policy:{ Checkpoint.hot_budget = Some 1; tiers = 2 }
      ~namespace:ns ~nranks:1 ()
  in
  let s1 = mk "testsrv-a" and s2 = mk "testsrv-b" in
  let snap st id v =
    ignore (Checkpoint.put_floats st ~rank:0 ~id ~dt:0.01 [| [| v; v |] |])
  in
  snap s1 0 1.0;
  snap s1 1 2.0 (* demotes id 0 to disk *);
  snap s2 0 3.0;
  snap s2 1 4.0;
  Alcotest.(check int) "store a spilled to its namespace" 1
    (List.length (spill_files "testsrv-a"));
  Alcotest.(check int) "store b spilled to its namespace" 1
    (List.length (spill_files "testsrv-b"));
  (* disk read-through still works *)
  (match Checkpoint.get_floats s1 ~rank:0 ~id:0 with
  | Some (_, arrays, Checkpoint.Disk) ->
    Alcotest.(check (float 0.0)) "spilled bytes intact" 1.0 arrays.(0).(0)
  | Some (_, _, _) -> Alcotest.fail "expected the disk tier"
  | None -> Alcotest.fail "expected Some from disk tier");
  Checkpoint.dispose s1;
  Alcotest.(check int) "dispose removed store a's files" 0
    (List.length (spill_files "testsrv-a"));
  Alcotest.(check int) "store b untouched" 1
    (List.length (spill_files "testsrv-b"));
  Checkpoint.dispose s2;
  Alcotest.(check int) "store b cleaned" 0
    (List.length (spill_files "testsrv-b"))

let test_binomial_cleans_spill () =
  (* the binomial driver namespaces its store per run and disposes it:
     no parad-snap litter may survive the call *)
  let before =
    Sys.readdir (Filename.get_temp_dir_name ())
    |> Array.to_list
    |> List.filter (fun f -> String.length f >= 10 && String.sub f 0 10 = "parad-snap")
  in
  let inp = { L.nx = 2; ny = 2; nz = 4; niter = 4; dt0 = 0.01; escale = 1.0 } in
  let b = L.gradient_binomial ~nranks:2 ~budget:2 L.Mpi inp in
  Alcotest.(check bool) "gradient finite" true
    (Float.is_finite b.L.b_grad.L.g_total);
  let after =
    Sys.readdir (Filename.get_temp_dir_name ())
    |> Array.to_list
    |> List.filter (fun f -> String.length f >= 10 && String.sub f 0 10 = "parad-snap")
  in
  Alcotest.(check int) "no spill directories leaked"
    (List.length before) (List.length after)

(* ---- mini slam soak ---- *)

let test_mini_slam () =
  let r = Slam.run ~trials:10 ~seed:3 () in
  Alcotest.(check int) "all classified" 0 r.Slam.s_unclassified;
  Alcotest.(check int) "warm = cold everywhere" 0 r.Slam.s_mismatches;
  Alcotest.(check bool) "soak passed" true (Slam.passed r)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "warm-bit-identical" `Quick
            test_warm_bit_identical;
          Alcotest.test_case "clean-after-failure" `Quick
            test_clean_after_failure_same_key;
          Alcotest.test_case "binomial-matches" `Quick
            test_binomial_matches_monolithic;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "transitions" `Quick test_breaker_transitions;
          Alcotest.test_case "end-to-end" `Quick test_breaker_e2e;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "deadline" `Quick test_deadline_classified;
          Alcotest.test_case "admission" `Quick test_admission_sheds;
          Alcotest.test_case "retry" `Quick test_retry_consumes_kill;
          Alcotest.test_case "seeds-validation" `Quick test_seeds_validation;
          Alcotest.test_case "seeds-batched" `Quick test_seeds_batched_ok;
          Alcotest.test_case "seeds-coalesce" `Quick test_seeds_coalesce;
          Alcotest.test_case "drain" `Quick test_drain;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "namespaces" `Quick test_checkpoint_namespaces;
          Alcotest.test_case "binomial-cleanup" `Quick
            test_binomial_cleans_spill;
        ] );
      ("slam", [ Alcotest.test_case "mini-soak" `Quick test_mini_slam ]);
    ]
