(* The operator-overloading tape baseline (CoDiPack analog): correctness
   against the compiler-integrated engine and finite differences, its
   adjoint-MPI extension, its OpenMP limitation, and the cost-model
   property the paper's Fig 8 analysis hinges on (high serial gradient
   overhead). *)

open Parad_ir
open Parad_runtime
module B = Builder
module GC = Parad_verify.Grad_check
module TC = Parad_verify.Tape_check

let feq = Alcotest.float 1e-8

let two ps = match ps with [ a; b ] -> a, b | _ -> assert false

(* shared serial test kernel: y = sum_i sin(x_i) * x_i^2 *)
let serial_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "k" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let xi = B.load b x i in
      let v = B.mul b (B.sin_ b xi) (B.mul b xi xi) in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur v));
  B.return b (Some (B.load b acc (B.i64 b 0)));
  ignore (B.finish b);
  prog

let input = [| 0.4; -1.3; 2.1; 0.9 |]

let test_tape_matches_enzyme () =
  let prog = serial_prog () in
  let args = [ GC.ABuf input; GC.AInt 4 ] in
  let seeds = [ Array.make 4 0.0 ] in
  let enzyme = GC.reverse prog "k" args ~seeds in
  let tape, _ = TC.reverse prog "k" args ~seeds in
  Alcotest.check feq "primal" enzyme.GC.primal tape.GC.primal;
  Array.iter2
    (fun a b -> Alcotest.check feq "adjoint" a b)
    (List.hd enzyme.GC.d_bufs)
    (List.hd tape.GC.d_bufs)

let test_tape_entries_recorded () =
  let prog = serial_prog () in
  let _, tape =
    TC.reverse prog "k"
      [ GC.ABuf input; GC.AInt 4 ]
      ~seeds:[ Array.make 4 0.0 ]
  in
  Alcotest.(check bool)
    "tape grew" true
    (Parad_tape.Tape.length tape > 4 * 3)

let test_tape_serial_overhead_higher_than_enzyme () =
  (* the crux of the paper's CoDiPack comparison: per-statement taping
     makes the serial gradient much slower than the compiler-generated
     one *)
  let prog = serial_prog () in
  let big = Array.init 256 (fun i -> 0.01 *. float_of_int (i + 1)) in
  let args = [ GC.ABuf big; GC.AInt 256 ] in
  let seeds = [ Array.make 256 0.0 ] in
  let primal =
    let _, _, res = GC.run_primal prog "k" args in
    res.Exec.makespan
  in
  let enzyme = (GC.reverse prog "k" args ~seeds).GC.makespan in
  let tape = (fst (TC.reverse prog "k" args ~seeds)).GC.makespan in
  let eo = enzyme /. primal and to_ = tape /. primal in
  Alcotest.(check bool)
    (Printf.sprintf "tape overhead (%.2fx) > enzyme overhead (%.2fx)" to_ eo)
    true (to_ > eo)

let test_tape_rejects_openmp () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "pf" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, n = two ps in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      B.store b x i (B.f64 b 1.0));
  B.return b None;
  ignore (B.finish b);
  match
    TC.reverse prog "pf"
      [ GC.ABuf [| 0.0; 0.0 |]; GC.AInt 2 ]
      ~seeds:[ Array.make 2 1.0 ]
  with
  | _ -> Alcotest.fail "tape accepted fork/join parallelism"
  | exception Value.Runtime_error _ -> ()

(* MPI: ring exchange, tape vs enzyme vs exact *)
let ring_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "ring"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let one = B.i64 b 1 in
  let next = B.rem b (B.add b rank one) size in
  let prev = B.rem b (B.add b rank (B.sub b size one)) size in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 5 in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let yi = B.load b y i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b yi yi)));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  prog

let test_tape_ampi_matches_enzyme () =
  let prog = ring_prog () in
  let nranks = 4 in
  let n = 3 in
  let data rank = Array.init n (fun i -> 0.2 +. (0.3 *. float_of_int (rank + i))) in
  let args ~rank = [ GC.ABuf (data rank); GC.AInt n ] in
  let seeds ~rank:_ = [ Array.make n 0.0 ] in
  let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
  let enzyme = GC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret in
  let tape, _ = TC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret in
  for r = 0 to nranks - 1 do
    Array.iter2
      (fun a b -> Alcotest.check feq (Printf.sprintf "rank %d" r) a b)
      (List.hd enzyme.GC.s_d_bufs.(r))
      (List.hd tape.GC.s_d_bufs.(r))
  done

let test_tape_ampi_scaling_artifact () =
  (* fig 8's analysis: tape "scales better" only because its serial
     overhead dominates at low rank counts. Check the signature: the
     tape/enzyme gradient-time ratio shrinks as ranks increase. *)
  let prog = ring_prog () in
  let total = 8192 in
  let time_of tool nranks =
    (* strong scaling: fixed total work split across ranks *)
    let n = total / nranks in
    let args ~rank =
      [ GC.ABuf (Array.init n (fun i -> 0.01 *. float_of_int (rank + i))); GC.AInt n ]
    in
    let seeds ~rank:_ = [ Array.make n 0.0 ] in
    let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
    match tool with
    | `Enzyme ->
      (GC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret).GC.s_makespan
    | `Tape ->
      (fst (TC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret))
        .GC.s_makespan
  in
  let ratio nranks = time_of `Tape nranks /. time_of `Enzyme nranks in
  let r2 = ratio 2 and r8 = ratio 8 in
  Alcotest.(check bool)
    (Printf.sprintf "tape/enzyme ratio shrinks with ranks (%.2f -> %.2f)" r2
       r8)
    true (r8 < r2)

(* ---- engine-compiled taping and the lowered reverse sweep ---- *)

let bits = Int64.bits_of_float

let check_bits_arr name a b =
  Alcotest.(check (array int64)) name (Array.map bits a) (Array.map bits b)

(* run the tape baseline with the primal on the engine's Seq runner vs
   the interpreter: identical tape, FNV-identical adjoints, identical
   makespan, zero interpreter fallbacks *)
let engine_slots prog =
  let prep = Parad_engine.Engine.prepare prog in
  Parad_engine.Engine.call_fn_slots prep Parad_engine.Engine.Seq

let test_engine_taping_bit_identical () =
  let prog = serial_prog () in
  let args = [ GC.ABuf input; GC.AInt 4 ] in
  let seeds = [ Array.make 4 0.0 ] in
  let ri, _ = TC.reverse prog "k" args ~seeds in
  let re, _ = TC.reverse ~call_slots:(engine_slots prog) prog "k" args ~seeds in
  Alcotest.(check int64) "primal bits" (bits ri.GC.primal) (bits re.GC.primal);
  check_bits_arr "adjoint bits" (List.hd ri.GC.d_bufs) (List.hd re.GC.d_bufs);
  Alcotest.(check (float 0.0)) "makespan" ri.GC.makespan re.GC.makespan;
  Alcotest.(check int)
    "tape entries" ri.GC.stats.Stats.tape_entries
    re.GC.stats.Stats.tape_entries;
  Alcotest.(check int)
    "engine stayed resident" 0 re.GC.stats.Stats.eng_fallbacks

let test_engine_taping_ampi () =
  let prog = ring_prog () in
  let nranks = 4 in
  let n = 3 in
  let data rank =
    Array.init n (fun i -> 0.2 +. (0.3 *. float_of_int (rank + i)))
  in
  let args ~rank = [ GC.ABuf (data rank); GC.AInt n ] in
  let seeds ~rank:_ = [ Array.make n 0.0 ] in
  let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
  let ri, _ = TC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret in
  let re, _ =
    TC.reverse_spmd ~call_slots:(engine_slots prog) prog "ring" ~nranks ~args
      ~seeds ~d_ret
  in
  for r = 0 to nranks - 1 do
    check_bits_arr
      (Printf.sprintf "rank %d adjoint bits" r)
      (List.hd ri.GC.s_d_bufs.(r))
      (List.hd re.GC.s_d_bufs.(r))
  done;
  Alcotest.(check (float 0.0)) "makespan" ri.GC.s_makespan re.GC.s_makespan

let test_engine_taping_rejects_openmp () =
  (* the engine's taped compile must reject fork/join with the
     interpreter's exact diagnostic *)
  let prog = Prog.create () in
  let b, ps =
    B.func prog "pf" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, n = two ps in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      B.store b x i (B.f64 b 1.0));
  B.return b None;
  ignore (B.finish b);
  let run call_slots =
    match
      TC.reverse ?call_slots prog "pf"
        [ GC.ABuf [| 0.0; 0.0 |]; GC.AInt 2 ]
        ~seeds:[ Array.make 2 1.0 ]
    with
    | _ -> Alcotest.fail "tape accepted fork/join parallelism"
    | exception Value.Runtime_error m -> m
  in
  Alcotest.(check string)
    "byte-identical diagnostic" (run None)
    (run (Some (engine_slots prog)))

let test_taped_sanitizer_falls_back () =
  (* a sanitized taped run cannot stay engine-resident: the engine must
     hand the whole call to the interpreter (counted) and the result must
     be bit-identical to a pure interpreter run *)
  let prog = serial_prog () in
  let args = [ GC.ABuf input; GC.AInt 4 ] in
  let seeds = [ Array.make 4 0.0 ] in
  let san () = Sanitizer.create () in
  let ri, _ = TC.reverse ~san:(san ()) prog "k" args ~seeds in
  let re, _ =
    TC.reverse ~san:(san ()) ~call_slots:(engine_slots prog) prog "k" args
      ~seeds
  in
  check_bits_arr "adjoint bits" (List.hd ri.GC.d_bufs) (List.hd re.GC.d_bufs);
  Alcotest.(check (float 0.0)) "makespan" ri.GC.makespan re.GC.makespan;
  Alcotest.(check bool)
    "fallback counted" true
    (re.GC.stats.Stats.eng_fallbacks > 0)

let test_taped_fault_plan_identical () =
  (* fault injection lives in the message runtime, which taped engine
     code reaches through the same delegated intrinsics: a lossy plan
     must leave engine and interpreter taping bit-identical *)
  let prog = ring_prog () in
  let nranks = 4 in
  let n = 3 in
  let args ~rank =
    [ GC.ABuf (Array.init n (fun i -> 0.1 +. float_of_int (rank + i))); GC.AInt n ]
  in
  let seeds ~rank:_ = [ Array.make n 0.0 ] in
  let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
  let plan () = Faults.plan_of_name ~nranks "drop-retry" in
  let ri, _ =
    TC.reverse_spmd ~faults:(plan ()) prog "ring" ~nranks ~args ~seeds ~d_ret
  in
  let re, _ =
    TC.reverse_spmd ~faults:(plan ()) ~call_slots:(engine_slots prog) prog
      "ring" ~nranks ~args ~seeds ~d_ret
  in
  for r = 0 to nranks - 1 do
    check_bits_arr
      (Printf.sprintf "rank %d adjoint bits" r)
      (List.hd ri.GC.s_d_bufs.(r))
      (List.hd re.GC.s_d_bufs.(r))
  done;
  Alcotest.(check (float 0.0)) "makespan" ri.GC.s_makespan re.GC.s_makespan;
  Alcotest.(check bool)
    "retries actually injected" true
    (re.GC.s_stats.Stats.send_retries > 0)

let test_lowered_sweep_identical () =
  let serial = serial_prog () in
  let args = [ GC.ABuf input; GC.AInt 4 ] in
  let seeds = [ Array.make 4 0.0 ] in
  let ri, _ = TC.reverse serial "k" args ~seeds in
  let rl, _ = TC.reverse ~lowered:true serial "k" args ~seeds in
  check_bits_arr "serial adjoint bits" (List.hd ri.GC.d_bufs)
    (List.hd rl.GC.d_bufs);
  Alcotest.(check (float 0.0)) "serial makespan" ri.GC.makespan rl.GC.makespan;
  let ring = ring_prog () in
  let nranks = 4 in
  let n = 3 in
  let rargs ~rank =
    [ GC.ABuf (Array.init n (fun i -> 0.2 +. (0.3 *. float_of_int (rank + i)))); GC.AInt n ]
  in
  let rseeds ~rank:_ = [ Array.make n 0.0 ] in
  let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
  let si, _ =
    TC.reverse_spmd ring "ring" ~nranks ~args:rargs ~seeds:rseeds ~d_ret
  in
  let sl, _ =
    TC.reverse_spmd ~lowered:true ring "ring" ~nranks ~args:rargs
      ~seeds:rseeds ~d_ret
  in
  for r = 0 to nranks - 1 do
    check_bits_arr
      (Printf.sprintf "rank %d adjoint bits" r)
      (List.hd si.GC.s_d_bufs.(r))
      (List.hd sl.GC.s_d_bufs.(r))
  done;
  Alcotest.(check (float 0.0)) "ring makespan" si.GC.s_makespan sl.GC.s_makespan

let test_batched_sweep_lanes_identical () =
  (* one k-wide sweep; every lane must be bit-identical to a standalone
     scalar sweep with that lane's seed *)
  let module Tape = Parad_tape.Tape in
  let prog = serial_prog () in
  let width = 3 in
  let d_rets = [| 1.0; -2.5; 0.125 |] in
  let scalar = Array.make width [||] in
  let batched = Array.make width [||] in
  let tape = Tape.create ~rank:0 in
  ignore
    (Exec.run_spmd_custom prog ~nranks:1
       ~instrument:(fun ~rank:_ -> Tape.instrument tape)
       ~body:(fun ctx ~rank:_ ->
         let t = tape in
         let vals, bufs = GC.build_args ctx [ GC.ABuf input; GC.AInt 4 ] in
         List.iter (Tape.activate t) bufs;
         let _, ret_slot =
           Interp.call_with_slots ctx "k" vals
             (List.map (fun _ -> 0) vals)
         in
         for l = 0 to width - 1 do
           let sw = Tape.sweep t in
           Tape.seed_slot sw ret_slot d_rets.(l);
           Tape.reverse sw ctx;
           scalar.(l) <- Tape.adjoint_of sw (List.hd bufs)
         done;
         let bsw = Tape.sweep_batched ~width t in
         for l = 0 to width - 1 do
           Tape.seed_slot_batched bsw ~lane:l ret_slot d_rets.(l)
         done;
         Tape.reverse_batched bsw ctx;
         for l = 0 to width - 1 do
           batched.(l) <- Tape.adjoint_of_batched bsw ~lane:l (List.hd bufs)
         done));
  for l = 0 to width - 1 do
    check_bits_arr (Printf.sprintf "lane %d" l) scalar.(l) batched.(l)
  done

let () =
  Alcotest.run "tape"
    [
      ( "serial",
        [
          Alcotest.test_case "matches enzyme" `Quick test_tape_matches_enzyme;
          Alcotest.test_case "records entries" `Quick
            test_tape_entries_recorded;
          Alcotest.test_case "higher serial overhead" `Quick
            test_tape_serial_overhead_higher_than_enzyme;
          Alcotest.test_case "rejects openmp" `Quick test_tape_rejects_openmp;
        ] );
      ( "ampi",
        [
          Alcotest.test_case "matches enzyme" `Quick
            test_tape_ampi_matches_enzyme;
          Alcotest.test_case "scaling artifact" `Quick
            test_tape_ampi_scaling_artifact;
        ] );
      ( "engine",
        [
          Alcotest.test_case "taping bit-identical" `Quick
            test_engine_taping_bit_identical;
          Alcotest.test_case "taping over mpi" `Quick test_engine_taping_ampi;
          Alcotest.test_case "rejects openmp" `Quick
            test_engine_taping_rejects_openmp;
          Alcotest.test_case "sanitizer falls back" `Quick
            test_taped_sanitizer_falls_back;
          Alcotest.test_case "fault plan identical" `Quick
            test_taped_fault_plan_identical;
        ] );
      ( "lowered",
        [
          Alcotest.test_case "lowered sweep identical" `Quick
            test_lowered_sweep_identical;
          Alcotest.test_case "batched lanes identical" `Quick
            test_batched_sweep_lanes_identical;
        ] );
    ]
